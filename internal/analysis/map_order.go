package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderChecker flags `range` loops over maps whose bodies have
// order-dependent effects: appending to a slice, writing output, or
// pushing into the ordered engine structures (internal/eventq,
// internal/lpn). Go randomizes map iteration order per run, so any such
// loop produces run-to-run differences unless the keys are sorted first.
// The one sanctioned shape — collect keys, sort, iterate the sorted
// slice — is recognized and not flagged: an append-only loop whose
// enclosing function sorts the collected slice passes.
var mapOrderChecker = &Checker{
	ID:  "map-order",
	Doc: "map iteration with order-dependent effects and no surrounding key sort",
	Run: runMapOrder,
}

// printFuncs are fmt functions that emit output (Sprintf and friends are
// pure and stay legal inside map ranges).
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names that append to an output or builder.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapOrder(p *Pass) {
	inspectFuncs(p.Pkg, func(_ ast.Node, body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			p.checkMapRange(rng, body)
			return true
		})
	})
}

// checkMapRange examines one map-typed range loop. fnBody is the body of
// the innermost enclosing function, scanned for a redeeming sort call.
func (p *Pass) checkMapRange(rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	var (
		appendTargets []types.Object
		firstEffect   string
	)
	note := func(what string, _ token.Pos) {
		if firstEffect == "" {
			firstEffect = what
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) {
					continue
				}
				if obj := p.rootObject(s.Lhs[0]); obj != nil {
					appendTargets = append(appendTargets, obj)
				}
				note("appends to a slice", s.Pos())
			}
		case *ast.CallExpr:
			fn := p.calleeFunc(s)
			if fn == nil {
				return true
			}
			pkgPath := ""
			if fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			recv := fn.Type().(*types.Signature).Recv()
			switch {
			case pkgPath == "fmt" && printFuncs[fn.Name()]:
				note("writes output via fmt."+fn.Name(), s.Pos())
			case recv != nil && writerMethods[fn.Name()]:
				note("writes output via "+fn.Name(), s.Pos())
			case strings.HasPrefix(pkgPath, p.Module.Path+"/internal/eventq"),
				strings.HasPrefix(pkgPath, p.Module.Path+"/internal/lpn"):
				note("feeds ordered engine state via "+fn.Name(), s.Pos())
			}
		}
		return true
	})
	if firstEffect == "" {
		return
	}
	// The sanctioned sortedKeys shape: the loop only appends, and the
	// enclosing function sorts what it collected.
	if firstEffect == "appends to a slice" && p.sortsAny(fnBody, appendTargets) {
		return
	}
	p.Report(rng.Pos(),
		"map iteration "+firstEffect+" — Go randomizes map order per run, so the result is nondeterministic",
		"iterate over sorted keys (collect, sort.Strings/sort.Slice, then range the slice)")
}

// sortsAny reports whether fnBody contains a call into package sort or
// slices that mentions one of the given variables — the collect-sort
// idiom that makes an append-under-range loop deterministic.
func (p *Pass) sortsAny(fnBody *ast.BlockStmt, targets []types.Object) bool {
	if len(targets) == 0 {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := p.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				id, ok := a.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Pkg.Info.Uses[id]
				for _, t := range targets {
					if obj == t {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and calls of function values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootObject returns the variable at the root of an assignable
// expression: x for x, x.f, x[i].f, and so on.
func (p *Pass) rootObject(expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[e]; obj != nil {
				return obj
			}
			return p.Pkg.Info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// inspectShallow walks stmts like ast.Inspect but does not descend into
// nested function literals (those are visited as functions of their own
// by inspectFuncs).
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		return fn(n)
	})
}
