package analysis

import (
	"go/ast"
)

// strayGoroutineChecker flags `go` statements and multi-clause `select`
// statements anywhere but internal/sweep. Every engine in this
// repository is deliberately single-threaded: determinism comes from one
// logical thread of control, and the sweep executor is the only
// sanctioned axis of parallelism (across fully independent runs). A
// goroutine or a racing select inside an engine reintroduces scheduler
// nondeterminism. internal/coro's synchronous channel handshake is the
// one annotated exception — control never runs concurrently there.
var strayGoroutineChecker = &Checker{
	ID:  "stray-goroutine",
	Doc: "go statements / multi-clause selects outside internal/sweep",
	Run: runStrayGoroutine,
}

func runStrayGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				p.Report(s.Pos(),
					"goroutine spawned outside internal/sweep — engines must stay single-threaded",
					"run the work inline, or move cross-run parallelism into internal/sweep")
			case *ast.SelectStmt:
				comm := 0
				for _, c := range s.Body.List {
					if cl, ok := c.(*ast.CommClause); ok && cl.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.Report(s.Pos(),
						"select with multiple communication clauses races on channel readiness",
						"restructure to a deterministic single-channel handoff")
				}
			}
			return true
		})
	}
}
