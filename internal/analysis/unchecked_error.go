package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// uncheckedErrorChecker flags call statements that silently drop an
// error result. A swallowed error in an engine or driver turns a failed
// simulation step into silently-wrong tables. Explicitly assigning to
// the blank identifier (`_ = f()`) is treated as a deliberate,
// greppable discard and stays legal; simply not looking is not.
//
// Allowlisted callees are the fmt print family plus methods on the
// never-failing in-memory writers (strings.Builder, bytes.Buffer): table
// rendering writes thousands of fmt.Fprintf lines, and wrapping each in
// error plumbing would bury the experiments in noise for writers that
// cannot fail.
var uncheckedErrorChecker = &Checker{
	ID:  "unchecked-error",
	Doc: "discarded error results on non-allowlisted calls",
	Run: runUncheckedError,
}

// errorFreeReceivers are types whose methods' error results never fire.
var errorFreeReceivers = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runUncheckedError(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil || !returnsError(p, call) || errAllowlisted(p, call) {
				return true
			}
			name := "call"
			if fn := p.calleeFunc(call); fn != nil {
				name = fn.Name()
			}
			p.Report(call.Pos(),
				fmt.Sprintf("error result of %s discarded", name),
				"handle the error, or make the discard explicit with `_ = ...`")
			return true
		})
	}
}

// returnsError reports whether the call's results include an error
// (conventionally the last one).
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errAllowlisted reports whether the callee is on the never-fails list.
func errAllowlisted(p *Pass, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if errorFreeReceivers[key] {
				return true
			}
		}
	}
	return false
}
