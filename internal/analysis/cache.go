package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The on-disk findings cache makes warm simlint runs cheap enough for a
// pre-commit hook. Cold runs pay for parsing and type-checking the whole
// module from source (the dominant cost by far); a warm run only hashes
// file contents and parses import clauses, then replays stored findings.
//
// Keying follows the go build cache's action-ID scheme:
//
//	action(pkg)  = H(version ‖ import path ‖ file hashes ‖ dep actions)
//	action(mod)  = H(version ‖ go.mod hash ‖ every package action)
//
// where version covers the cache schema and the resolved checker set
// (running a different -c subset must not alias). File hashes include
// _test.go files even though analysis never type-checks them: the
// fault-site-registry checker greps the test corpus, so test edits must
// invalidate the module entry (and, conservatively, the package entry).
//
// Per-package entries hold the local-checker findings of that package;
// the module entry holds the whole-program checkers' findings. Any
// missing entry demotes the run to cold — entries are written back
// atomically (tmp + rename) so a crashed run never poisons the cache.

// cacheSchema bumps whenever the finding encoding or checker semantics
// change in a way stored entries cannot survive.
const cacheSchema = "simlint-cache-v1"

// Cache is a findings cache rooted at one directory.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// cacheEntry is one stored JSON entry.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
}

func (c *Cache) path(kind, id string) string {
	return filepath.Join(c.dir, kind+"-"+id+".json")
}

func (c *Cache) read(kind, id string) ([]Finding, bool) {
	data, err := os.ReadFile(c.path(kind, id))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil {
		return nil, false // corrupt entry: treat as miss, overwritten on store
	}
	return e.Findings, true
}

func (c *Cache) write(kind, id string, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.Marshal(cacheEntry{Findings: fs})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), c.path(kind, id))
}

// pkgAction is the cheap (no type-check) fingerprint of one package
// directory.
type pkgAction struct {
	Dir        string // absolute directory
	ImportPath string
	actionID   string
	deps       []string // module-internal import paths
}

// AnalyzeModuleCached is AnalyzeModule with an on-disk findings cache.
// It returns the findings, whether the run was served warm (no
// type-checking), and any error.
func AnalyzeModuleCached(root string, names []string, cache *Cache) ([]Finding, bool, error) {
	checkers, err := resolveCheckers(names)
	if err != nil {
		return nil, false, err
	}
	version := cacheVersionFor(checkers)

	actions, modID, err := scanActions(root, version)
	if err != nil {
		return nil, false, err
	}

	// Warm path: every entry present → replay without loading anything.
	if all, ok := tryWarm(cache, actions, modID); ok {
		return all, true, nil
	}

	// Cold path: full load + analysis, then populate every entry.
	m, err := LoadModule(root)
	if err != nil {
		return nil, false, err
	}
	findings := AnalyzeScope(m, m.Pkgs, checkers)
	if err := storeRun(cache, actions, modID, findings, checkers); err != nil {
		return nil, false, err
	}
	return findings, false, nil
}

// cacheVersionFor derives the version seed from the schema and the
// resolved checker IDs (order-sensitive: it mirrors run order).
func cacheVersionFor(checkers []*Checker) string {
	ids := make([]string, len(checkers))
	for i, c := range checkers {
		ids[i] = c.ID
	}
	return cacheSchema + "/" + strings.Join(ids, ",")
}

// scanActions fingerprints every package directory of the module:
// content hashes plus an ImportsOnly parse for dependency edges. No
// type-checking happens here — this is the entire cost of a warm run.
func scanActions(root, version string) (map[string]*pkgAction, string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, "", err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	gomodSum, err := fileHash(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", err
	}

	actions := map[string]*pkgAction{} // by import path
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		ip := modPath
		if dir != root {
			ip = modPath + "/" + filepath.ToSlash(mustRel(root, dir))
		}
		if _, ok := actions[ip]; !ok {
			a, err := fingerprintDir(dir, ip, modPath)
			if err != nil {
				return err
			}
			actions[ip] = a
		}
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	// Resolve action IDs bottom-up (imports are acyclic, so plain
	// recursion with memoization terminates).
	var resolve func(ip string, trail map[string]bool) (string, error)
	resolve = func(ip string, trail map[string]bool) (string, error) {
		a, ok := actions[ip]
		if !ok {
			// Import of a module path with no packages on disk (or one
			// that lives under testdata); fold in the path itself.
			return hashStrings("missing", ip), nil
		}
		if a.actionID != "" {
			return a.actionID, nil
		}
		if trail[ip] {
			return "", fmt.Errorf("import cycle through %s", ip)
		}
		trail[ip] = true
		parts := []string{version, ip}
		files, err := hashDirFiles(a.Dir)
		if err != nil {
			return "", err
		}
		parts = append(parts, files...)
		for _, dep := range a.deps {
			id, err := resolve(dep, trail)
			if err != nil {
				return "", err
			}
			parts = append(parts, id)
		}
		delete(trail, ip)
		a.actionID = hashStrings(parts...)
		return a.actionID, nil
	}

	paths := make([]string, 0, len(actions))
	for ip := range actions {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	modParts := []string{version, gomodSum}
	for _, ip := range paths {
		id, err := resolve(ip, map[string]bool{})
		if err != nil {
			return nil, "", err
		}
		modParts = append(modParts, ip, id)
	}
	return actions, hashStrings(modParts...), nil
}

// fingerprintDir parses the package clause and imports of one directory.
func fingerprintDir(dir, importPath, modPath string) (*pkgAction, error) {
	a := &pkgAction{Dir: dir, ImportPath: importPath}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				a.deps = append(a.deps, p)
			}
		}
	}
	sort.Strings(a.deps)
	return a, nil
}

// hashDirFiles hashes every Go file of a directory, including _test.go
// files: the fault-site-registry checker reads the test corpus, so test
// edits must invalidate.
func hashDirFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var parts []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		h, err := fileHash(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		parts = append(parts, name, h)
	}
	return parts, nil
}

// tryWarm assembles the full finding set from cache entries; ok is false
// on the first miss.
func tryWarm(cache *Cache, actions map[string]*pkgAction, modID string) ([]Finding, bool) {
	if cache == nil {
		return nil, false
	}
	global, ok := cache.read("m", modID)
	if !ok {
		return nil, false
	}
	all := append([]Finding{}, global...)
	paths := make([]string, 0, len(actions))
	for ip := range actions {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		fs, ok := cache.read("p", actions[ip].actionID)
		if !ok {
			return nil, false
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, true
}

// storeRun partitions a cold run's findings into cache entries: local
// findings by owning package, global findings into the module entry.
func storeRun(cache *Cache, actions map[string]*pkgAction, modID string, findings []Finding, checkers []*Checker) error {
	if cache == nil {
		return nil
	}
	globalIDs := map[string]bool{}
	for _, c := range checkers {
		if c.Global() {
			globalIDs[c.ID] = true
		}
	}
	// Map a finding's file to its package by directory.
	byDir := map[string]*pkgAction{}
	for _, a := range actions {
		byDir[filepath.ToSlash(a.Dir)] = a
	}
	root := byDirRoot(actions)
	var global []Finding
	perPkg := map[string][]Finding{}
	for _, f := range findings {
		if globalIDs[f.Checker] {
			global = append(global, f)
			continue
		}
		// f.File is module-relative; resolve its directory.
		dir := filepath.ToSlash(filepath.Dir(filepath.Join(root, filepath.FromSlash(f.File))))
		a, ok := byDir[dir]
		if !ok {
			// A local finding outside any fingerprinted package (should
			// not happen); stash it with the globals so it survives.
			global = append(global, f)
			continue
		}
		perPkg[a.actionID] = append(perPkg[a.actionID], f)
	}
	for _, a := range actions {
		if err := cache.write("p", a.actionID, perPkg[a.actionID]); err != nil {
			return err
		}
	}
	return cache.write("m", modID, global)
}

// byDirRoot recovers the module root from any action (all dirs share
// it): ImportPath is modPath[/rel], so strip one path element per
// segment of rel.
func byDirRoot(actions map[string]*pkgAction) string {
	for _, a := range actions {
		dir := a.Dir
		if i := strings.Index(a.ImportPath, "/"); i >= 0 {
			for range strings.Split(a.ImportPath[i+1:], "/") {
				dir = filepath.Dir(dir)
			}
		}
		return dir
	}
	return ""
}

func fileHash(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

func hashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
