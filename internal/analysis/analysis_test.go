package analysis

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

// testModule loads (once) the repository module this test runs inside.
func testModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			modErr = err
			return
		}
		root := wd
		for {
			if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(root)
			if parent == root {
				modErr = fmt.Errorf("no go.mod above %s", wd)
				return
			}
			root = parent
		}
		mod, modErr = LoadModule(root)
	})
	if modErr != nil {
		t.Fatalf("loading module: %v", modErr)
	}
	return mod
}

// wantMarker matches golden-finding expectations embedded in fixtures.
var wantMarker = regexp.MustCompile(`// WANT ([a-z-]+)`)

// expectedFindings scans fixture files for // WANT <checker> markers.
func expectedFindings(t *testing.T, filenames []string, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	for _, fn := range filenames {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(root, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), i+1, m[1])] = true
			}
		}
	}
	return want
}

func findingKeys(fs []Finding) map[string]bool {
	got := map[string]bool{}
	for _, f := range fs {
		got[fmt.Sprintf("%s:%d %s", f.File, f.Line, f.Checker)] = true
	}
	return got
}

func diffSets(t *testing.T, want, got map[string]bool) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if !want[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch {
		case want[k] && !got[k]:
			t.Errorf("missing finding: %s", k)
		case !want[k] && got[k]:
			t.Errorf("unexpected finding: %s", k)
		}
	}
}

// TestGoldenFindings runs each checker over its fixture package (one
// positive file full of WANT markers, one marker-free negative file) and
// asserts the reported findings match the markers exactly.
func TestGoldenFindings(t *testing.T) {
	fixtures := map[string]string{
		"nondettime":     "nondet-time",
		"nondetrand":     "nondet-rand",
		"maporder":       "map-order",
		"straygoroutine": "stray-goroutine",
		"uncheckederror": "unchecked-error",
		"snapshotdrift":  "snapshot-drift",
		"faultsite":      "fault-site-registry",
		"lanesafety":     "lane-safety",
		"hotpathalloc":   "hotpath-alloc",
	}
	m := testModule(t)
	for dir, checker := range fixtures {
		dir, checker := dir, checker
		t.Run(checker, func(t *testing.T) {
			c := checkerByID(checker)
			if c == nil {
				t.Fatalf("unknown checker %q", checker)
			}
			fixDir := filepath.Join(m.Root, "internal/analysis/testdata/src", dir)
			pkg, err := m.LoadExtraDir(fixDir, "fixture/"+dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			want := expectedFindings(t, pkg.Filenames, m.Root)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no WANT markers", dir)
			}
			got := findingKeys(AnalyzePackage(m, pkg, []*Checker{c}))
			diffSets(t, want, got)

			// The negative file must contribute nothing.
			for k := range got {
				if strings.Contains(k, "/neg.go") {
					t.Errorf("negative fixture file raised a finding: %s", k)
				}
			}
		})
	}
}

// TestDeliberateDrift plays out the scenario snapshot-drift exists for:
// the driftdemo fixture copies a nex-style engine struct with one field
// added after the encoder was written. The checker must name exactly
// that field — not the transient scratch buffer, not the encoded state.
func TestDeliberateDrift(t *testing.T) {
	m := testModule(t)
	fixDir := filepath.Join(m.Root, "internal/analysis/testdata/src/driftdemo")
	pkg, err := m.LoadExtraDir(fixDir, "fixture/driftdemo")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	got := AnalyzePackage(m, pkg, []*Checker{checkerByID("snapshot-drift")})
	if len(got) != 1 {
		t.Fatalf("got %d findings, want exactly the drifted field: %v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Message, "debugHits") || !strings.Contains(f.Message, "miniEngine") {
		t.Errorf("finding does not name the drifted field: %s", f.Message)
	}
	want := expectedFindings(t, pkg.Filenames, m.Root)
	diffSets(t, want, findingKeys(got))
}

// TestSuppression checks both //simlint:allow forms — trailing on the
// offending line and alone on the line above — and that unannotated
// sites in the same file still fire.
func TestSuppression(t *testing.T) {
	m := testModule(t)
	fixDir := filepath.Join(m.Root, "internal/analysis/testdata/src/suppress")
	pkg, err := m.LoadExtraDir(fixDir, "fixture/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	checkers := []*Checker{checkerByID("nondet-time"), checkerByID("nondet-rand")}
	got := AnalyzePackage(m, pkg, checkers)
	want := expectedFindings(t, pkg.Filenames, m.Root)
	diffSets(t, want, findingKeys(got))
	if len(got) != 1 {
		t.Errorf("got %d findings, want exactly the one unsuppressed site: %v", len(got), got)
	}
}

// TestCommittedTreeClean asserts the repository itself is finding-free:
// every determinism rule the suite enforces holds on the committed code.
func TestCommittedTreeClean(t *testing.T) {
	m := testModule(t)
	var findings []Finding
	for _, pkg := range m.Pkgs {
		findings = append(findings, AnalyzePackage(m, pkg, nil)...)
	}
	for _, f := range findings {
		t.Errorf("committed tree has finding: %s", f)
	}
}

// TestAllowlistScope locks the whole-file allowlist down to exactly the
// intended sites. Growing it is a deliberate act (update this test);
// the engines (internal/core, internal/nex, internal/accel, ...) must
// never appear here.
func TestAllowlistScope(t *testing.T) {
	want := map[string][]string{
		"nondet-time": {
			"cmd/paperbench/",
			"cmd/nexsim/",
			"examples/",
			"internal/experiments/speed.go",
			"internal/simserve/",
			"cmd/simd/",
			"internal/cluster/",
			"cmd/simrouter/",
		},
		"nondet-rand": {
			"internal/simserve/",
			"cmd/simd/",
			"internal/cluster/",
			"cmd/simrouter/",
		},
		"stray-goroutine": {
			"internal/sweep/",
			"internal/simserve/",
			"cmd/simd/",
			"internal/cluster/",
			"cmd/simrouter/",
		},
	}
	if len(defaultAllow) != len(want) {
		t.Fatalf("defaultAllow covers %d checkers, want %d", len(defaultAllow), len(want))
	}
	for id, prefixes := range want {
		got := defaultAllow[id]
		if len(got) != len(prefixes) {
			t.Errorf("%s: allowlist %v, want %v", id, got, prefixes)
			continue
		}
		for i := range prefixes {
			if got[i] != prefixes[i] {
				t.Errorf("%s[%d] = %q, want %q", id, i, got[i], prefixes[i])
			}
		}
	}

	// Behavioral check: the serving layer is exempt, prefix-adjacent
	// paths and the engines are not.
	cases := []struct {
		checker, file string
		allowed       bool
	}{
		{"nondet-time", "internal/simserve/simserve.go", true},
		{"nondet-time", "cmd/simd/main.go", true},
		{"nondet-rand", "internal/simserve/metrics.go", true},
		{"stray-goroutine", "internal/simserve/simserve.go", true},
		{"stray-goroutine", "cmd/simd/main.go", true},
		{"stray-goroutine", "internal/sweep/pool.go", true},
		{"nondet-time", "internal/simbricks/adapter.go", false}, // prefix-adjacent
		{"nondet-time", "cmd/simlint/main.go", false},           // prefix-adjacent
		{"nondet-time", "internal/core/sim.go", false},
		{"nondet-rand", "internal/nex/nex.go", false},
		{"stray-goroutine", "internal/core/sim.go", false},
		{"map-order", "internal/simserve/metrics.go", false}, // no map-order exemptions anywhere
		{"unchecked-error", "internal/simserve/simserve.go", false},
		{"nondet-time", "internal/simserve/simserve_test.go", true}, // test files always exempt
	}
	for _, c := range cases {
		p := &Pass{Checker: checkerByID(c.checker)}
		if p.Checker == nil {
			t.Fatalf("unknown checker %q", c.checker)
		}
		if got := p.allowed(c.file); got != c.allowed {
			t.Errorf("allowed(%s, %s) = %v, want %v", c.checker, c.file, got, c.allowed)
		}
	}

	// Staleness check: every allowlist entry must still match at least
	// one non-test Go file on the tree. A zero-match prefix is a rename
	// or deletion that silently turned the exemption into dead config —
	// and would silently re-exempt whatever lands at that path later.
	root := filepath.Join("..", "..")
	for id, prefixes := range defaultAllow {
		for _, prefix := range prefixes {
			if matchesAnyGoFile(t, root, prefix) {
				continue
			}
			t.Errorf("%s: allowlist entry %q matches no non-test .go file; remove or update it", id, prefix)
		}
	}
}

// matchesAnyGoFile reports whether an allowlist entry (a directory
// prefix ending in "/", or an exact file path) matches at least one
// non-test Go file under root.
func matchesAnyGoFile(t *testing.T, root, prefix string) bool {
	t.Helper()
	if !strings.HasSuffix(prefix, "/") {
		_, err := os.Stat(filepath.Join(root, filepath.FromSlash(prefix)))
		return err == nil
	}
	dir := filepath.Join(root, filepath.FromSlash(prefix))
	found := false
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || found {
			return fs.SkipAll
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			found = true
			return fs.SkipAll
		}
		return nil
	})
	return found
}

// TestCheckerRegistry pins the suite composition: nine uniquely named
// checkers, resolvable by ID, with unknown names rejected.
func TestCheckerRegistry(t *testing.T) {
	cs := Checkers()
	wantIDs := []string{
		"nondet-time", "nondet-rand", "map-order", "stray-goroutine",
		"unchecked-error", "snapshot-drift", "fault-site-registry",
		"lane-safety", "hotpath-alloc",
	}
	if len(cs) != len(wantIDs) {
		t.Fatalf("suite has %d checkers, want %d", len(cs), len(wantIDs))
	}
	seen := map[string]bool{}
	for i, c := range cs {
		if c.ID != wantIDs[i] {
			t.Errorf("checker[%d] = %q, want %q", i, c.ID, wantIDs[i])
		}
		if (c.Run == nil) == (c.RunModule == nil) {
			t.Errorf("checker %q must have exactly one of Run/RunModule", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate checker ID %q", c.ID)
		}
		seen[c.ID] = true
		if checkerByID(c.ID) != c {
			t.Errorf("checkerByID(%q) does not round-trip", c.ID)
		}
		if c.Doc == "" {
			t.Errorf("checker %q has no doc line", c.ID)
		}
	}
	if _, err := resolveCheckers([]string{"no-such-checker"}); err == nil {
		t.Error("resolveCheckers accepted an unknown checker name")
	}
}
