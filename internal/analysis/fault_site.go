package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// faultSiteChecker enforces the fault-injection registry contract
// (DESIGN.md §9). Injection sites are stringly-typed chokepoints: the
// engine crosses them with Injector.Hit("site") and the spec schedules
// faults against the same names. A typo on either side does not fail —
// it silently never fires, which in a chaos suite means the scenario you
// believe you are testing is not running at all.
//
// Three rules, all anchored on the Site* string constants declared in
// internal/faults:
//
//  1. Every site argument to (*faults.Injector).Hit, and every Site
//     value in a faults.Fault / FaultSpec composite literal, must be a
//     compile-time constant equal to a registered site.
//  2. Every registered Site* constant must be returned by
//     faults.Sites() — the registry function the spec validator and the
//     fault-matrix test enumerate.
//  3. Every registered site must be exercised by the test corpus: its
//     constant name (or literal value) must appear in at least one
//     _test.go file. A site no test references is chaos coverage that
//     silently rotted.
var faultSiteChecker = &Checker{
	ID:        "fault-site-registry",
	Doc:       "fault injection sites must be registered constants, listed by Sites(), and test-exercised",
	RunModule: runFaultSite,
}

func runFaultSite(p *ModulePass) {
	faultsPkg := p.Module.PackageByPath(p.Module.Path + "/internal/faults")
	if faultsPkg == nil {
		return // module has no fault layer
	}
	sites := registeredSites(faultsPkg)
	if len(sites) == 0 {
		return
	}

	// Rule 1: constant, registered site names at every injection point.
	for _, pkg := range p.Scope {
		checkInjectionPoints(p, pkg, faultsPkg, sites)
	}

	// Rules 2 and 3 anchor on the faults package's own declarations, so
	// they only run when it is in scope (skipped in fixture mode).
	if p.InScope(faultsPkg) {
		checkSitesRegistry(p, faultsPkg, sites)
		checkSitesExercised(p, faultsPkg, sites)
	}
}

// siteConst is one registered Site* string constant.
type siteConst struct {
	obj   *types.Const
	value string
}

// registeredSites collects the Site*-prefixed string constants of the
// faults package, sorted by name.
func registeredSites(faultsPkg *Package) []siteConst {
	var out []siteConst
	scope := faultsPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Site") {
			continue
		}
		if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			continue
		}
		out = append(out, siteConst{obj: c, value: constant.StringVal(c.Val())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Name() < out[j].obj.Name() })
	return out
}

func siteValueKnown(sites []siteConst, v string) bool {
	for _, s := range sites {
		if s.value == v {
			return true
		}
	}
	return false
}

// checkInjectionPoints validates Hit call arguments and Site fields of
// fault-plan composite literals in one package.
func checkInjectionPoints(p *ModulePass, pkg *Package, faultsPkg *Package, sites []siteConst) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				fn := calleeOf(pkg, v)
				if fn == nil || fn.Pkg() != faultsPkg.Types || fn.Name() != "Hit" || len(v.Args) == 0 {
					return true
				}
				checkSiteExpr(p, pkg, v.Args[0], sites, "Injector.Hit")
			case *ast.CompositeLit:
				tv, ok := pkg.Info.Types[v]
				if !ok {
					return true
				}
				named, ok := derefNamed(tv.Type)
				if !ok || !strings.Contains(named.Obj().Name(), "Fault") {
					return true
				}
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Site" {
						checkSiteExpr(p, pkg, kv.Value, sites, named.Obj().Name()+"{Site: ...}")
					}
				}
			}
			return true
		})
	}
}

// checkSiteExpr validates one site-name expression: it must be a
// compile-time string constant whose value is a registered site.
func checkSiteExpr(p *ModulePass, pkg *Package, expr ast.Expr, sites []siteConst, where string) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Report(expr.Pos(),
			fmt.Sprintf("site passed to %s is not a compile-time constant; a typo here never fires and never fails", where),
			"pass one of the faults.Site* constants")
		return
	}
	v := constant.StringVal(tv.Value)
	if !siteValueKnown(sites, v) {
		p.Report(expr.Pos(),
			fmt.Sprintf("%q passed to %s is not a registered fault site", v, where),
			"use one of the faults.Site* constants (see faults.Sites())")
	}
}

// checkSitesRegistry asserts every Site* constant is referenced inside
// faults.Sites() — the runtime registry the spec validator trusts.
func checkSitesRegistry(p *ModulePass, faultsPkg *Package, sites []siteConst) {
	sitesFn, ok := faultsPkg.Types.Scope().Lookup("Sites").(*types.Func)
	if !ok {
		return
	}
	fi := p.Module.Graph().Lookup(sitesFn)
	if fi == nil {
		return
	}
	referenced := map[*types.Const]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := fi.Pkg.Info.Uses[id].(*types.Const); ok {
				referenced[c] = true
			}
		}
		return true
	})
	for _, s := range sites {
		if !referenced[s.obj] {
			p.Report(s.obj.Pos(),
				fmt.Sprintf("site constant %s is not returned by Sites(); spec validation will reject plans that use it", s.obj.Name()),
				"add it to the Sites() registry")
		}
	}
}

// checkSitesExercised asserts every registered site appears — by
// constant name or literal value — in at least one _test.go file of the
// module (the fault-matrix fixtures).
func checkSitesExercised(p *ModulePass, faultsPkg *Package, sites []siteConst) {
	corpus := testFileCorpus(p.Module.Root)
	for _, s := range sites {
		name, value := s.obj.Name(), `"`+s.value+`"`
		exercised := false
		for _, content := range corpus {
			if strings.Contains(content, name) || strings.Contains(content, value) {
				exercised = true
				break
			}
		}
		if !exercised {
			p.Report(s.obj.Pos(),
				fmt.Sprintf("site %s (%q) is never exercised by any _test.go file; its chaos coverage has rotted", name, s.value),
				"add a fault-matrix fixture that schedules a fault at this site")
		}
	}
}

// testFileCorpus reads every _test.go file under root (skipping
// testdata, vendor, and hidden directories).
func testFileCorpus(root string) []string {
	var out []string
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_test.go") {
			if data, err := os.ReadFile(path); err == nil {
				out = append(out, string(data))
			}
		}
		return nil
	})
	return out
}

// derefNamed unwraps pointers to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
