// Package coro provides the deterministic coroutine machinery on which
// host engines run simulated application threads.
//
// Each simulated thread is a goroutine that is *never* runnable at the
// same time as the engine: control passes synchronously between the
// engine's event loop and exactly one thread at a time through a
// channel handshake. The result is a single logical thread of control,
// so simulations are deterministic regardless of GOMAXPROCS.
package coro

import (
	"fmt"

	"nexsim/internal/isa"
	"nexsim/internal/vclock"
)

// Op identifies what a thread is asking its engine to do.
type Op int

const (
	// OpExit: the thread function returned. The engine must not resume
	// the thread again.
	OpExit Op = iota
	// OpAdvance: consume CPU time described by Work.
	OpAdvance
	// OpInteract: run Interact on the engine at the thread's resolved
	// virtual time (MMIO, task-buffer access). The returned duration is
	// charged to the thread as interaction latency.
	OpInteract
	// OpPark: block until another thread (or the engine) unparks us.
	OpPark
	// OpUnpark: make Target runnable (the current thread keeps running).
	OpUnpark
	// OpSleep: block for Dur of virtual time.
	OpSleep
	// OpSpawn: create a new thread running Fn; reply carries the Thread.
	OpSpawn
	// OpWaitIRQ: block until interrupt Vector is delivered.
	OpWaitIRQ
	// OpWarp: enter/exit a time-warp region (CompressT/SlipStream/JumpT).
	OpWarp
	// OpTick: NEX tick mode — a designated batched synchronization point.
	OpTick
)

// WarpKind selects a time-warping feature (paper §3.4).
type WarpKind int

const (
	CompressT WarpKind = iota
	SlipStream
	JumpT
)

func (w WarpKind) String() string {
	switch w {
	case CompressT:
		return "CompressT"
	case SlipStream:
		return "SlipStream"
	default:
		return "JumpT"
	}
}

// Request is what a yielding thread hands to its engine.
type Request struct {
	Op       Op
	Work     isa.Work                             // OpAdvance
	Interact func(at vclock.Time) vclock.Duration // OpInteract
	Dur      vclock.Duration                      // OpSleep
	Target   *Thread                              // OpUnpark
	Name     string                               // OpSpawn
	Body     any                                  // OpSpawn: the engine's thread-body type
	Vector   int                                  // OpWaitIRQ
	Warp     WarpKind                             // OpWarp
	Factor   float64                              // OpWarp (CompressT)
	Enter    bool                                 // OpWarp: true=enter region
	Light    bool                                 // OpInteract: non-trapping (tick-mode batched access)
	Addr     uint64                               // OpInteract: target address (engines classify device vs memory accesses)
}

// Thread is one simulated application thread.
type Thread struct {
	ID   int
	Name string

	// Data is engine-private per-thread state.
	Data any

	fn      func()
	req     chan Request
	resume  chan struct{}
	started bool
	exited  bool
	killed  bool

	// Spawn handshake: the engine places the new thread here before
	// resuming the spawner.
	Spawned *Thread
}

// NewThread creates a thread that will run fn when first resumed. The
// engine assigns IDs.
func NewThread(id int, name string, fn func()) *Thread {
	return &Thread{
		ID:     id,
		Name:   name,
		fn:     fn,
		req:    make(chan Request),
		resume: make(chan struct{}),
	}
}

// Resume transfers control to the thread until its next request. It
// panics if called on an exited thread — that is always an engine bug.
func (t *Thread) Resume() Request {
	if t.exited {
		panic(fmt.Sprintf("coro: resume of exited thread %s", t.Name))
	}
	if !t.started {
		t.started = true
		// Synchronous handoff: the new goroutine blocks on t.resume until
		// the engine yields to it, so engine and thread never run at once.
		go t.run() //simlint:allow stray-goroutine deterministic channel handshake
	}
	t.resume <- struct{}{}
	r := <-t.req
	if r.Op == OpExit {
		t.exited = true
	}
	return r
}

func (t *Thread) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				// A real panic in the thread body: crash the process, as an
				// unrecovered goroutine panic always did.
				panic(r)
			}
		}
		t.req <- Request{Op: OpExit}
	}()
	<-t.resume
	if t.killed {
		panic(killSentinel{})
	}
	t.fn()
}

// Yield hands a request to the engine and blocks until resumed. It must
// only be called from within the thread's own goroutine (i.e. from Env
// method implementations).
func (t *Thread) Yield(r Request) {
	if t.killed {
		// Unwinding from Kill: a deferred function in the thread body
		// tried to yield again. Keep unwinding instead of handing the
		// engine a request it will never process.
		panic(killSentinel{})
	}
	t.req <- r
	<-t.resume
	if t.killed {
		panic(killSentinel{})
	}
}

// killSentinel is the panic value Kill injects into a parked thread's
// goroutine to unwind it; run() recovers it (and only it).
type killSentinel struct{}

// Kill force-terminates the thread: a started, not-yet-exited thread is
// resumed one last time with the kill flag set, unwinds via a recovered
// sentinel panic, and reports OpExit. Engines call it when abandoning a
// run mid-flight (budget aborts) so no goroutine is left blocked on the
// handshake channel. Must be called from the engine side, with the
// thread parked in Yield/first-resume (the only states a non-running
// thread can be in). Safe on exited or never-started threads.
func (t *Thread) Kill() {
	if t.exited {
		return
	}
	t.killed = true
	if !t.started {
		// No goroutine exists yet; nothing to unwind.
		t.exited = true
		return
	}
	t.resume <- struct{}{}
	r := <-t.req
	if r.Op != OpExit {
		panic(fmt.Sprintf("coro: killed thread %s yielded %v instead of exiting", t.Name, r.Op))
	}
	t.exited = true
}

// Exited reports whether the thread function has returned.
func (t *Thread) Exited() bool { return t.exited }

func (t *Thread) String() string { return fmt.Sprintf("thread(%d,%s)", t.ID, t.Name) }
