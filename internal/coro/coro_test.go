package coro

import (
	"testing"

	"nexsim/internal/vclock"
)

func TestHandshake(t *testing.T) {
	var order []string
	th := NewThread(1, "t", func() {
		order = append(order, "a")
		me.Yield(Request{Op: OpSleep, Dur: 5})
		order = append(order, "b")
	})
	me = th

	r := th.Resume()
	if r.Op != OpSleep || r.Dur != 5 {
		t.Fatalf("first request = %+v", r)
	}
	order = append(order, "engine")
	r = th.Resume()
	if r.Op != OpExit {
		t.Fatalf("second request = %+v", r)
	}
	want := []string{"a", "engine", "b"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v", order)
		}
	}
	if !th.Exited() {
		t.Fatal("thread not marked exited")
	}
}

// me lets the test thread function reach its own Thread without a
// separate Env plumbing layer.
var me *Thread

func TestResumeAfterExitPanics(t *testing.T) {
	th := NewThread(1, "t", func() {})
	if r := th.Resume(); r.Op != OpExit {
		t.Fatalf("got %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	th.Resume()
}

func TestInteractClosure(t *testing.T) {
	var got uint32
	th := NewThread(2, "t", func() {
		var v uint32
		me2.Yield(Request{Op: OpInteract, Interact: func(at vclock.Time) vclock.Duration {
			v = 42
			return 7
		}})
		got = v
	})
	me2 = th
	r := th.Resume()
	if r.Op != OpInteract {
		t.Fatalf("op = %v", r.Op)
	}
	if d := r.Interact(100); d != 7 {
		t.Fatalf("interact cost = %v", d)
	}
	th.Resume() // let the thread finish
	if got != 42 {
		t.Fatalf("thread saw %d, want value set during interact", got)
	}
}

var me2 *Thread

func TestManyThreadsDeterministic(t *testing.T) {
	// Round-robin resuming 100 threads yields a deterministic sequence.
	run := func() []int {
		var seq []int
		threads := make([]*Thread, 100)
		for i := range threads {
			i := i
			threads[i] = NewThread(i, "w", func() {
				seq = append(seq, i)
			})
		}
		for _, th := range threads {
			if r := th.Resume(); r.Op != OpExit {
				t.Fatalf("unexpected request %+v", r)
			}
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic execution order")
		}
	}
}
