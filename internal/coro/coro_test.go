package coro

import (
	"testing"

	"nexsim/internal/vclock"
)

func TestHandshake(t *testing.T) {
	var order []string
	th := NewThread(1, "t", func() {
		order = append(order, "a")
		me.Yield(Request{Op: OpSleep, Dur: 5})
		order = append(order, "b")
	})
	me = th

	r := th.Resume()
	if r.Op != OpSleep || r.Dur != 5 {
		t.Fatalf("first request = %+v", r)
	}
	order = append(order, "engine")
	r = th.Resume()
	if r.Op != OpExit {
		t.Fatalf("second request = %+v", r)
	}
	want := []string{"a", "engine", "b"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v", order)
		}
	}
	if !th.Exited() {
		t.Fatal("thread not marked exited")
	}
}

// me lets the test thread function reach its own Thread without a
// separate Env plumbing layer.
var me *Thread

func TestResumeAfterExitPanics(t *testing.T) {
	th := NewThread(1, "t", func() {})
	if r := th.Resume(); r.Op != OpExit {
		t.Fatalf("got %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	th.Resume()
}

func TestInteractClosure(t *testing.T) {
	var got uint32
	th := NewThread(2, "t", func() {
		var v uint32
		me2.Yield(Request{Op: OpInteract, Interact: func(at vclock.Time) vclock.Duration {
			v = 42
			return 7
		}})
		got = v
	})
	me2 = th
	r := th.Resume()
	if r.Op != OpInteract {
		t.Fatalf("op = %v", r.Op)
	}
	if d := r.Interact(100); d != 7 {
		t.Fatalf("interact cost = %v", d)
	}
	th.Resume() // let the thread finish
	if got != 42 {
		t.Fatalf("thread saw %d, want value set during interact", got)
	}
}

var me2 *Thread

func TestManyThreadsDeterministic(t *testing.T) {
	// Round-robin resuming 100 threads yields a deterministic sequence.
	run := func() []int {
		var seq []int
		threads := make([]*Thread, 100)
		for i := range threads {
			i := i
			threads[i] = NewThread(i, "w", func() {
				seq = append(seq, i)
			})
		}
		for _, th := range threads {
			if r := th.Resume(); r.Op != OpExit {
				t.Fatalf("unexpected request %+v", r)
			}
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic execution order")
		}
	}
}

func TestKillParkedThreadUnwinds(t *testing.T) {
	deferred := false
	reached := false
	th := NewThread(0, "victim", func() {
		defer func() { deferred = true }()
		th2 := th2ref
		th2.Yield(Request{Op: OpPark})
		reached = true
	})
	th2ref = th
	if r := th.Resume(); r.Op != OpPark {
		t.Fatalf("expected park, got %v", r.Op)
	}
	th.Kill()
	if !th.Exited() {
		t.Fatal("killed thread not marked exited")
	}
	if !deferred {
		t.Fatal("thread deferred cleanup did not run during kill unwind")
	}
	if reached {
		t.Fatal("thread body continued past the kill point")
	}
}

var th2ref *Thread

func TestKillNeverStartedThread(t *testing.T) {
	th := NewThread(0, "unborn", func() { t.Fatal("must never run") })
	th.Kill()
	if !th.Exited() {
		t.Fatal("never-started thread not exited after kill")
	}
	th.Kill() // idempotent
}

func TestKillExitedThreadIsNoOp(t *testing.T) {
	th := NewThread(0, "done", func() {})
	if r := th.Resume(); r.Op != OpExit {
		t.Fatalf("expected exit, got %v", r.Op)
	}
	th.Kill()
	if !th.Exited() {
		t.Fatal("exited flag lost")
	}
}

func TestKillThreadWhoseDeferYields(t *testing.T) {
	// A deferred function that tries to Yield during the kill unwind must
	// keep unwinding, not deadlock the engine.
	th := NewThread(0, "yield-in-defer", func() {
		defer func() {
			th3ref.Yield(Request{Op: OpUnpark})
			t.Fatal("yield during kill unwind must not return")
		}()
		th3ref.Yield(Request{Op: OpPark})
	})
	th3ref = th
	if r := th.Resume(); r.Op != OpPark {
		t.Fatalf("expected park, got %v", r.Op)
	}
	th.Kill()
	if !th.Exited() {
		t.Fatal("thread with yielding defer not killed")
	}
}

var th3ref *Thread
