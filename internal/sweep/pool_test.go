package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := p.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("TrySubmit refused with free backlog: %v", err)
		}
	}
	p.Close()
	if ran.Load() != 50 {
		t.Fatalf("ran %d jobs, want 50", ran.Load())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Occupy the single worker and wait until it has dequeued the job.
	if err := p.TrySubmit(func() { defer wg.Done(); close(started); <-block }); err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	<-started
	// Fill the single backlog slot.
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("backlog submit refused with a free slot: %v", err)
	}
	if p.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", p.Depth())
	}
	// Worker busy + backlog full: the next submit must be refused.
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit over the queue bound = %v, want ErrQueueFull", err)
	}
	close(block)
	wg.Wait()
	p.Close()
}

func TestPoolCloseDrainsQueued(t *testing.T) {
	p := NewPool(1, 8)
	block := make(chan struct{})
	var ran atomic.Int64
	_ = p.TrySubmit(func() { <-block; ran.Add(1) })
	for i := 0; i < 5; i++ {
		if err := p.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit refused with free backlog: %v", err)
		}
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	close(block)
	<-done
	if ran.Load() != 6 {
		t.Fatalf("Close drained %d jobs, want 6", ran.Load())
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -1)
	if p.Workers() < 1 {
		t.Fatal("default worker count not positive")
	}
	if p.Capacity() != 0 {
		t.Fatalf("Capacity = %d, want 0", p.Capacity())
	}
	p.Close()
}

// TestPoolTrySubmitCloseInterleaving hammers TrySubmit from several
// goroutines while Close runs concurrently. Every interleaving must hold
// three invariants: TrySubmit never panics with a send on the closed
// channel, every accepted job runs exactly once (Close drains the
// queue), and TrySubmit refuses once Close has returned. Run under
// -race this also checks the closed-flag discipline.
func TestPoolTrySubmitCloseInterleaving(t *testing.T) {
	for round := 0; round < 25; round++ {
		p := NewPool(2, 4)
		var accepted, executed atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					if p.TrySubmit(func() { executed.Add(1) }) == nil {
						accepted.Add(1)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p.Close()
		}()
		close(start)
		wg.Wait()
		if err := p.TrySubmit(func() {}); !errors.Is(err, ErrClosed) {
			t.Fatalf("TrySubmit after Close returned = %v, want ErrClosed", err)
		}
		if got, want := executed.Load(), accepted.Load(); got != want {
			t.Fatalf("round %d: %d jobs executed, want %d (accepted)", round, got, want)
		}
	}
}
