// Package sweep runs independent simulation jobs in parallel.
//
// The paper's headline claim is wall-clock speed, and its evaluation
// workflows (§6.4 design sweeps, Table 4 epoch sweeps) are embarrassingly
// parallel: many fully independent full-stack simulations whose results
// are rendered together at the end. Every engine in this repository is
// deliberately single-threaded and deterministic, so the only safe — and
// the most profitable — axis of parallelism is across *runs*: each job
// builds its own system (core.Build) and runs it to completion on one
// worker, and results are collected into an order-preserving slice so
// tables and figures render byte-identically to a serial execution.
//
// The executor is a work-stealing scheduler: jobs are block-partitioned
// across per-worker deques; a worker drains its own deque from the front
// (preserving enumeration locality) and, when empty, steals the back half
// of the fullest victim's deque. Stealing keeps workers busy under the
// skewed job costs typical of sweeps (a gem5+RTL run is orders of
// magnitude slower than a NEX+DSim run of the same benchmark) without any
// shared run queue to contend on. Deques are mutex-protected: each job is
// an entire simulation run (micro- to milliseconds at minimum), so queue
// operations are nowhere near the critical path.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Executor fans independent jobs across a fixed set of workers.
type Executor struct {
	workers int
}

// New returns an executor with the given worker count; n <= 0 selects
// runtime.GOMAXPROCS(0). A single-worker executor runs jobs inline in
// enumeration order, exactly like the pre-existing serial harness.
func New(n int) *Executor {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: n}
}

// Workers returns the executor's worker count.
func (x *Executor) Workers() int { return x.workers }

// ClampIntra bounds an intra-run lane request so the combined
// goroutine load of a sweep stays within a machine budget. A sweep
// running w inter-run workers, each simulating with IntraParallel = k,
// keeps up to w*k goroutines runnable at once; beyond the physical
// core count the two axes just contend with each other. Inter-run
// workers are the more profitable axis (runs are fully independent,
// intra-run lanes synchronize at every horizon), so the worker count
// is preserved and the intra request is shrunk to fit:
//
//	intra' = max(1, min(intra, budget/workers))
//
// budget <= 0 selects runtime.GOMAXPROCS(0). The clamp never raises a
// request, so -intra 1 (the serial schedule) always stays serial.
func ClampIntra(workers, intra, budget int) int {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if intra < 1 {
		intra = 1
	}
	if fit := budget / workers; intra > fit {
		intra = fit
	}
	if intra < 1 {
		intra = 1
	}
	return intra
}

// deque is one worker's job queue, holding indices into the job slice.
// The owner pops from the front; thieves take the back half.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

// popFront takes the owner's next job, or -1 when empty.
func (d *deque) popFront() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return -1
	}
	j := d.jobs[0]
	d.jobs = d.jobs[1:]
	return j
}

// stealBack removes and returns the back half of the deque (at least one
// job), or nil when empty.
func (d *deque) stealBack() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.jobs)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	stolen := make([]int, take)
	copy(stolen, d.jobs[n-take:])
	d.jobs = d.jobs[:n-take]
	return stolen
}

// size reports the current queue length (victim selection).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.jobs)
}

// pushFront returns stolen jobs to the front of a worker's own deque.
func (d *deque) pushFront(jobs []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.jobs = append(jobs, d.jobs...)
}

// Map executes every job and returns their results in job order. Each
// job runs exactly once on exactly one worker; result i is job i's return
// value regardless of which worker ran it or when, so rendering code
// observes the same sequence a serial loop would produce. A panic in any
// job is re-raised on the caller's goroutine after all workers stop.
func Map[T any](x *Executor, jobs []func() T) []T {
	results := make([]T, len(jobs))
	Run(x, len(jobs), func(i int) { results[i] = jobs[i]() })
	return results
}

// Run executes fn(0..n-1), fanning calls across the executor's workers.
// It is the untyped core of Map for callers that write results into
// their own structures.
func Run(x *Executor, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if x == nil || x.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	w := x.workers
	if w > n {
		w = n
	}

	// Block-partition job indices across worker deques so each worker
	// starts on a contiguous slice of the enumeration.
	deques := make([]*deque, w)
	for i := range deques {
		deques[i] = &deque{}
	}
	for i := 0; i < n; i++ {
		d := deques[i*w/n]
		d.jobs = append(d.jobs, i)
	}

	var (
		wg    sync.WaitGroup
		panMu sync.Mutex
		pan   any
	)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panMu.Lock()
					if pan == nil {
						pan = r
					}
					panMu.Unlock()
				}
			}()
			own := deques[self]
			for {
				i := own.popFront()
				if i < 0 {
					// Own deque empty: steal the back half of the
					// fullest victim's deque.
					victim := -1
					best := 0
					for vi, d := range deques {
						if vi == self {
							continue
						}
						if s := d.size(); s > best {
							best, victim = s, vi
						}
					}
					if victim < 0 {
						return
					}
					stolen := deques[victim].stealBack()
					if len(stolen) == 0 {
						continue // lost the race; rescan victims
					}
					own.pushFront(stolen)
					continue
				}
				fn(i)
			}
		}(wi)
	}
	wg.Wait()
	if pan != nil {
		panic(fmt.Sprintf("sweep: job panicked: %v", pan))
	}
}
