package sweep

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 32} {
		x := New(workers)
		jobs := make([]func() int, 100)
		for i := range jobs {
			i := i
			jobs[i] = func() int { return i * i }
		}
		got := Map(x, jobs)
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestEveryJobRunsExactlyOnce(t *testing.T) {
	const n = 500
	var counts [n]int32
	jobs := make([]func() struct{}, n)
	for i := range jobs {
		i := i
		jobs[i] = func() struct{} {
			atomic.AddInt32(&counts[i], 1)
			return struct{}{}
		}
	}
	Map(New(7), jobs)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestStealingBalancesSkewedJobs gives the first worker's block a long
// job followed by many short ones; with stealing, the short jobs finish
// on other workers instead of queueing behind the long one.
func TestStealingBalancesSkewedJobs(t *testing.T) {
	const n = 64
	var ran int32
	jobs := make([]func() int, n)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 0 {
				// Long job: spin until every other job has run (they can
				// only do that if they were stolen onto other workers).
				deadline := time.Now().Add(5 * time.Second)
				for atomic.LoadInt32(&ran) < n-1 {
					if time.Now().After(deadline) {
						return -1
					}
					time.Sleep(time.Millisecond)
				}
				return 0
			}
			atomic.AddInt32(&ran, 1)
			return i
		}
	}
	got := Map(New(4), jobs)
	if got[0] == -1 {
		t.Fatal("short jobs never stolen away from the worker stuck on the long job")
	}
	for i := 1; i < n; i++ {
		if got[i] != i {
			t.Fatalf("result[%d] = %d", i, got[i])
		}
	}
}

func TestRunZeroAndOneJob(t *testing.T) {
	Run(New(4), 0, func(int) { t.Fatal("fn called for n=0") })
	called := 0
	Run(New(4), 1, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("n=1 ran %d times", called)
	}
}

func TestNilExecutorRunsSerially(t *testing.T) {
	var order []int
	Run(nil, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback out of order: %v", order)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("job panic was swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	jobs := make([]func() int, 16)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 11 {
				panic("boom")
			}
			return i
		}
	}
	Map(New(4), jobs)
}

func TestWorkersDefault(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if New(3).Workers() != 3 {
		t.Fatal("New(3) must keep the requested count")
	}
}

func TestClampIntra(t *testing.T) {
	cases := []struct {
		workers, intra, budget, want int
	}{
		{1, 4, 16, 4},  // fits: untouched
		{4, 4, 16, 4},  // exactly fits
		{8, 4, 16, 2},  // shrunk to budget/workers
		{16, 4, 16, 1}, // workers saturate the budget
		{32, 4, 16, 1}, // oversubscribed workers: still at least 1
		{4, 1, 16, 1},  // serial request stays serial
		{0, 0, 16, 1},  // degenerate inputs normalize
	}
	for _, c := range cases {
		if got := ClampIntra(c.workers, c.intra, c.budget); got != c.want {
			t.Errorf("ClampIntra(%d, %d, %d) = %d, want %d",
				c.workers, c.intra, c.budget, got, c.want)
		}
	}
	if got := ClampIntra(1, 1, 0); got != 1 {
		t.Errorf("ClampIntra with default budget must keep serial: got %d", got)
	}
}
