package sweep

import (
	"errors"
	"runtime"
	"sync"
)

// TrySubmit refusal reasons. They are distinct errors because the
// caller's correct responses differ: a full queue is transient
// backpressure (shed this request, try again later — HTTP 429), a
// closed pool is terminal (the server is shutting down — HTTP 503).
var (
	// ErrQueueFull reports that the bounded backlog is at capacity.
	ErrQueueFull = errors.New("sweep: pool queue full")
	// ErrClosed reports that Close has been called on the pool.
	ErrClosed = errors.New("sweep: pool closed")
)

// Pool is the executor's queue-feeding mode: a long-lived worker pool
// fed one job at a time through a bounded queue, for callers that
// receive work over time (the simserve daemon) rather than enumerating
// it up front (Map/Run). The queue bound is the backpressure surface —
// TrySubmit refuses instead of blocking when it is full, so a server
// can shed load (HTTP 429) rather than buffer without limit.
//
// Like Map, each job runs exactly once on exactly one worker; jobs must
// be independent (every simulation builds its own System). Unlike Map,
// a panicking job takes the daemon down: long-running services must not
// limp on with a dead worker, and callers that want containment wrap
// their jobs with recover.
type Pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given worker count (n <= 0 selects
// runtime.GOMAXPROCS(0)) and queue capacity (backlog < 0 is treated as
// 0, where a submit only succeeds while a worker is blocked on
// receive).
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{workers: workers, jobs: make(chan func(), backlog)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It returns ErrQueueFull when
// the backlog is at capacity (shed load, retry later) and ErrClosed
// after Close (terminal — stop submitting).
func (p *Pool) TrySubmit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth reports the number of queued (not yet started) jobs.
func (p *Pool) Depth() int { return len(p.jobs) }

// Capacity reports the queue bound.
func (p *Pool) Capacity() int { return cap(p.jobs) }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting jobs, drains everything already queued, waits
// for in-flight jobs to finish, and returns. Safe to call more than
// once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
