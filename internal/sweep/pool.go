package sweep

import (
	"runtime"
	"sync"
)

// Pool is the executor's queue-feeding mode: a long-lived worker pool
// fed one job at a time through a bounded queue, for callers that
// receive work over time (the simserve daemon) rather than enumerating
// it up front (Map/Run). The queue bound is the backpressure surface —
// TrySubmit refuses instead of blocking when it is full, so a server
// can shed load (HTTP 429) rather than buffer without limit.
//
// Like Map, each job runs exactly once on exactly one worker; jobs must
// be independent (every simulation builds its own System). Unlike Map,
// a panicking job takes the daemon down: long-running services must not
// limp on with a dead worker, and callers that want containment wrap
// their jobs with recover.
type Pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given worker count (n <= 0 selects
// runtime.GOMAXPROCS(0)) and queue capacity (backlog < 0 is treated as
// 0, where a submit only succeeds while a worker is blocked on
// receive).
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{workers: workers, jobs: make(chan func(), backlog)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It returns false when the
// queue is full or the pool is closed — the caller's signal to shed
// load.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// Depth reports the number of queued (not yet started) jobs.
func (p *Pool) Depth() int { return len(p.jobs) }

// Capacity reports the queue bound.
func (p *Pool) Capacity() int { return cap(p.jobs) }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting jobs, drains everything already queued, waits
// for in-flight jobs to finish, and returns. Safe to call more than
// once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
