package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded streams diverged")
		}
	}
}

func TestDeriveIndependentOfOrder(t *testing.T) {
	root1 := New(7)
	x1 := root1.Derive("x")
	y1 := root1.Derive("y")

	root2 := New(7)
	y2 := root2.Derive("y")
	x2 := root2.Derive("x")

	if x1.Uint64() != x2.Uint64() || y1.Uint64() != y2.Uint64() {
		t.Fatal("derived streams depend on creation order")
	}
}

func TestDeriveDistinct(t *testing.T) {
	root := New(7)
	if root.Derive("a").Uint64() == root.Derive("b").Uint64() {
		t.Fatal("sibling streams collide")
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		v := New(seed).Intn(nn)
		return v >= 0 && v < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(5)
	const sigma = 0.02
	for i := 0; i < 10000; i++ {
		j := s.Jitter(sigma)
		if j < 1-3*sigma || j > 1+3*sigma {
			t.Fatalf("jitter %v escapes truncation", j)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nn := int(n % 64)
		p := New(seed).Perm(nn)
		seen := make([]bool, nn)
		for _, v := range p {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
