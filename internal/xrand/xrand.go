// Package xrand provides small, fast, deterministic pseudo-random streams
// used by the simulators' noise and workload models.
//
// We deliberately do not use math/rand's global state: every consumer
// derives its own named stream from a root seed so that adding a new
// random draw in one component never perturbs the sequence seen by
// another — a prerequisite for stable regression tests across the
// repository.
package xrand

import "math"

// Stream is a SplitMix64 generator. The zero value is a valid stream
// seeded with 0.
type Stream struct {
	state uint64
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Derive returns an independent child stream identified by name. The
// derivation hashes the name (FNV-1a) into the parent's seed without
// consuming parent state, so sibling streams are stable regardless of
// the order in which they are created.
func (s *Stream) Derive(name string) *Stream {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &Stream{state: mix(s.state ^ h)}
}

// State returns the stream's current internal state. Two streams with
// equal state produce identical sequences, so the state serves as a
// memo key for pure functions of a stream.
func (s *Stream) State() uint64 { return s.state }

// Uint64 returns the next value in the stream.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (s *Stream) NormFloat64() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns a multiplicative factor 1 + N(0, sigma) truncated to
// [1-3*sigma, 1+3*sigma]; it is used to model run-to-run timing noise.
func (s *Stream) Jitter(sigma float64) float64 {
	j := 1 + sigma*s.NormFloat64()
	lo, hi := 1-3*sigma, 1+3*sigma
	if j < lo {
		return lo
	}
	if j > hi {
		return hi
	}
	return j
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
