package simserve

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"nexsim/internal/checkpoint"
	"nexsim/internal/faults"
	"nexsim/internal/stats"
)

// metrics is the daemon's operational counter set, rendered as plain
// text on /metrics (one `name value` or `name{label="..."} value` line
// per metric, in stable order). All fields are guarded by the server's
// lock; gauges (queue depth, busy workers) are sampled at render time.
type metrics struct {
	jobsSubmitted int64 // specs accepted onto the queue (fresh runs)
	jobsCompleted int64
	jobsFailed    int64
	jobsCanceled  int64 // queued jobs skipped at pickup (all waiters gone)
	jobsDeduped   int64 // submits coalesced onto an in-flight identical run
	cacheHits     int64 // submits served from the result cache
	cacheMisses   int64

	// Cluster hot-set counters (POST /cluster/hotset).
	hotsetPromoted   int64 // pushed results verified and cached
	hotsetDuplicates int64 // pushes for results already cached here
	hotsetRejected   int64 // pushes failing content-address verification

	workersBusy int64 // currently executing jobs (gauge)

	// Self-healing counters.
	retriesTotal      int64 // transient failures re-attempted
	transientFailures int64 // jobs answered with a transient failure (retries exhausted)
	budgetAborts      int64 // attempts aborted by core.ErrBudgetExceeded
	hedgesLaunched    int64 // speculative second attempts started
	hedgesWon         int64 // hedges that published first
	hedgesWasted      int64 // attempts finishing after another published
	hedgeMismatches   int64 // hedge/primary byte mismatches (determinism violations)

	// Crash-safety counters (StateDir servers).
	walRecoveredResults int64 // done records replayed into the cache at Open
	walRecoveredPending int64 // interrupted jobs resubmitted at Open
	walPendingDropped   int64 // interrupted jobs that no longer fit the queue
	walAppendErrors     int64 // journal writes that failed (results stay in memory)

	// Per-benchmark wall-time histograms (milliseconds) for completed
	// fresh runs; cache hits cost no engine time and are not recorded.
	benchWall map[string]*stats.Histogram
	benchRuns map[string]int64
}

// wallBoundsMS are the histogram buckets: 0.25ms to ~8s, doubling.
var wallBoundsMS = stats.GeometricBounds(0.25, 2, 16)

func newMetrics() *metrics {
	return &metrics{
		benchWall: map[string]*stats.Histogram{},
		benchRuns: map[string]int64{},
	}
}

// observeRun records one completed fresh run of bench taking wallMS.
func (m *metrics) observeRun(bench string, wallMS float64) {
	h := m.benchWall[bench]
	if h == nil {
		h = stats.NewHistogram(wallBoundsMS...)
		m.benchWall[bench] = h
	}
	h.Observe(wallMS)
	m.benchRuns[bench]++
}

// render writes the metrics page. queueDepth/queueCap/workers are
// sampled by the caller from the pool, cacheEntries/cacheEvictions from
// the result cache, and ck from the prefix-checkpoint store.
func (m *metrics) render(w io.Writer, shardID string, queueDepth, queueCap, workers int, cacheEntries int, cacheEvictions int64, ck checkpoint.StoreStats) {
	if shardID != "" {
		fmt.Fprintf(w, "simserve_shard{id=%q} 1\n", shardID)
	}
	fmt.Fprintf(w, "simserve_jobs_submitted %d\n", m.jobsSubmitted)
	fmt.Fprintf(w, "simserve_jobs_completed %d\n", m.jobsCompleted)
	fmt.Fprintf(w, "simserve_jobs_failed %d\n", m.jobsFailed)
	fmt.Fprintf(w, "simserve_jobs_canceled %d\n", m.jobsCanceled)
	fmt.Fprintf(w, "simserve_jobs_deduped %d\n", m.jobsDeduped)
	fmt.Fprintf(w, "simserve_cache_hits %d\n", m.cacheHits)
	fmt.Fprintf(w, "simserve_cache_misses %d\n", m.cacheMisses)
	fmt.Fprintf(w, "simserve_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "simserve_cache_evictions %d\n", cacheEvictions)
	fmt.Fprintf(w, "simserve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "simserve_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "simserve_workers %d\n", workers)
	fmt.Fprintf(w, "simserve_workers_busy %d\n", m.workersBusy)
	fmt.Fprintf(w, "simserve_checkpoint_entries %d\n", ck.Entries)
	fmt.Fprintf(w, "simserve_checkpoint_bytes %d\n", ck.UsedBytes)
	fmt.Fprintf(w, "simserve_checkpoint_hits %d\n", ck.Hits)
	fmt.Fprintf(w, "simserve_checkpoint_misses %d\n", ck.Misses)
	fmt.Fprintf(w, "simserve_checkpoint_evictions %d\n", ck.Evictions)
	fmt.Fprintf(w, "simserve_checkpoint_disk_hits %d\n", ck.Disk.Hits)
	fmt.Fprintf(w, "simserve_checkpoint_disk_misses %d\n", ck.Disk.Misses)
	fmt.Fprintf(w, "simserve_checkpoint_disk_corrupt %d\n", ck.Disk.Corrupt)
	fmt.Fprintf(w, "simserve_checkpoint_disk_puts %d\n", ck.Disk.Puts)
	fmt.Fprintf(w, "simserve_retries_total %d\n", m.retriesTotal)
	fmt.Fprintf(w, "simserve_transient_failures %d\n", m.transientFailures)
	fmt.Fprintf(w, "simserve_budget_aborts %d\n", m.budgetAborts)
	fmt.Fprintf(w, "simserve_hedges_launched %d\n", m.hedgesLaunched)
	fmt.Fprintf(w, "simserve_hedges_won %d\n", m.hedgesWon)
	fmt.Fprintf(w, "simserve_hedges_wasted %d\n", m.hedgesWasted)
	fmt.Fprintf(w, "simserve_hedge_mismatches %d\n", m.hedgeMismatches)
	fmt.Fprintf(w, "simserve_hotset_promoted %d\n", m.hotsetPromoted)
	fmt.Fprintf(w, "simserve_hotset_duplicates %d\n", m.hotsetDuplicates)
	fmt.Fprintf(w, "simserve_hotset_rejected %d\n", m.hotsetRejected)
	fmt.Fprintf(w, "simserve_wal_recovered_results %d\n", m.walRecoveredResults)
	fmt.Fprintf(w, "simserve_wal_recovered_pending %d\n", m.walRecoveredPending)
	fmt.Fprintf(w, "simserve_wal_pending_dropped %d\n", m.walPendingDropped)
	fmt.Fprintf(w, "simserve_wal_append_errors %d\n", m.walAppendErrors)
	fmt.Fprintf(w, "simserve_faults_fired_total %d\n", faults.FiredTotal())
	sites, counts := faults.FiredBySite()
	for i, site := range sites {
		fmt.Fprintf(w, "simserve_faults_fired{site=%q} %d\n", site, counts[i])
	}

	benches := make([]string, 0, len(m.benchWall))
	for b := range m.benchWall {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, b := range benches {
		fmt.Fprintf(w, "simserve_bench_runs{bench=%q} %d\n", b, m.benchRuns[b])
		h := m.benchWall[b]
		cum := h.Cumulative()
		for i, bound := range h.Bounds() {
			fmt.Fprintf(w, "simserve_bench_wall_ms_bucket{bench=%q,le=%q} %d\n",
				b, strconv.FormatFloat(bound, 'g', -1, 64), cum[i])
		}
		fmt.Fprintf(w, "simserve_bench_wall_ms_bucket{bench=%q,le=\"+Inf\"} %d\n", b, cum[len(cum)-1])
		fmt.Fprintf(w, "simserve_bench_wall_ms_sum{bench=%q} %s\n",
			b, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(w, "simserve_bench_wall_ms_count{bench=%q} %d\n", b, h.N())
	}
}
