package simserve

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"nexsim/internal/checkpoint"
	"nexsim/internal/stats"
)

// metrics is the daemon's operational counter set, rendered as plain
// text on /metrics (one `name value` or `name{label="..."} value` line
// per metric, in stable order). All fields are guarded by the server's
// lock; gauges (queue depth, busy workers) are sampled at render time.
type metrics struct {
	jobsSubmitted int64 // specs accepted onto the queue (fresh runs)
	jobsCompleted int64
	jobsFailed    int64
	jobsDeduped   int64 // submits coalesced onto an in-flight identical run
	cacheHits     int64 // submits served from the result cache
	cacheMisses   int64

	workersBusy int64 // currently executing jobs (gauge)

	// Per-benchmark wall-time histograms (milliseconds) for completed
	// fresh runs; cache hits cost no engine time and are not recorded.
	benchWall map[string]*stats.Histogram
	benchRuns map[string]int64
}

// wallBoundsMS are the histogram buckets: 0.25ms to ~8s, doubling.
var wallBoundsMS = stats.GeometricBounds(0.25, 2, 16)

func newMetrics() *metrics {
	return &metrics{
		benchWall: map[string]*stats.Histogram{},
		benchRuns: map[string]int64{},
	}
}

// observeRun records one completed fresh run of bench taking wallMS.
func (m *metrics) observeRun(bench string, wallMS float64) {
	h := m.benchWall[bench]
	if h == nil {
		h = stats.NewHistogram(wallBoundsMS...)
		m.benchWall[bench] = h
	}
	h.Observe(wallMS)
	m.benchRuns[bench]++
}

// render writes the metrics page. queueDepth/queueCap/workers are
// sampled by the caller from the pool, cacheEntries/cacheEvictions from
// the result cache, and ck from the prefix-checkpoint store.
func (m *metrics) render(w io.Writer, queueDepth, queueCap, workers int, cacheEntries int, cacheEvictions int64, ck checkpoint.StoreStats) {
	fmt.Fprintf(w, "simserve_jobs_submitted %d\n", m.jobsSubmitted)
	fmt.Fprintf(w, "simserve_jobs_completed %d\n", m.jobsCompleted)
	fmt.Fprintf(w, "simserve_jobs_failed %d\n", m.jobsFailed)
	fmt.Fprintf(w, "simserve_jobs_deduped %d\n", m.jobsDeduped)
	fmt.Fprintf(w, "simserve_cache_hits %d\n", m.cacheHits)
	fmt.Fprintf(w, "simserve_cache_misses %d\n", m.cacheMisses)
	fmt.Fprintf(w, "simserve_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "simserve_cache_evictions %d\n", cacheEvictions)
	fmt.Fprintf(w, "simserve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "simserve_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "simserve_workers %d\n", workers)
	fmt.Fprintf(w, "simserve_workers_busy %d\n", m.workersBusy)
	fmt.Fprintf(w, "simserve_checkpoint_entries %d\n", ck.Entries)
	fmt.Fprintf(w, "simserve_checkpoint_bytes %d\n", ck.UsedBytes)
	fmt.Fprintf(w, "simserve_checkpoint_hits %d\n", ck.Hits)
	fmt.Fprintf(w, "simserve_checkpoint_misses %d\n", ck.Misses)
	fmt.Fprintf(w, "simserve_checkpoint_evictions %d\n", ck.Evictions)

	benches := make([]string, 0, len(m.benchWall))
	for b := range m.benchWall {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, b := range benches {
		fmt.Fprintf(w, "simserve_bench_runs{bench=%q} %d\n", b, m.benchRuns[b])
		h := m.benchWall[b]
		cum := h.Cumulative()
		for i, bound := range h.Bounds() {
			fmt.Fprintf(w, "simserve_bench_wall_ms_bucket{bench=%q,le=%q} %d\n",
				b, strconv.FormatFloat(bound, 'g', -1, 64), cum[i])
		}
		fmt.Fprintf(w, "simserve_bench_wall_ms_bucket{bench=%q,le=\"+Inf\"} %d\n", b, cum[len(cum)-1])
		fmt.Fprintf(w, "simserve_bench_wall_ms_sum{bench=%q} %s\n",
			b, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(w, "simserve_bench_wall_ms_count{bench=%q} %d\n", b, h.N())
	}
}
