// Package simserve exposes the deterministic simulation engines as a
// long-running service: a bounded job queue and worker pool over
// internal/sweep, content-addressed result caching, singleflight
// deduplication of identical in-flight runs, and an operational HTTP
// surface (/jobs, /healthz, /metrics) served by cmd/simd.
//
// The paper's interactive workloads (§6.4 design sweeps, what-if
// epoch/latency exploration) are repeated queries over a small space of
// run configurations. A one-shot CLI redoes the full simulation for
// every question; a service answers a repeated question from cache.
// What makes that sound is determinism, which this repository enforces
// statically (simlint) and at runtime (byte-identical table tests): a
// run is a pure function of its experiments.Spec, so the spec's
// canonical-encoding SHA-256 is a true content address for its result
// and a cached result is byte-identical to a fresh run.
//
// Request flow: each submitted spec is normalized, addressed, and then
// either served from the LRU result cache (cache hit), attached to an
// identical run already queued or executing (singleflight dedup), or
// enqueued onto the bounded worker pool. A full queue sheds load with
// HTTP 429 instead of buffering without limit. Shutdown drains: queued
// and in-flight runs complete (their results land in the cache) before
// Close returns.
package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/faults"
	"nexsim/internal/nex"
	"nexsim/internal/sweep"
	"nexsim/internal/xrand"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the worker-pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// Intra is the intra-run worker count applied to every simulation
	// (core.Config.IntraParallel): the host engine plus up to Intra-1
	// accelerator stepper goroutines per run. Results stay
	// byte-identical (conservative schedule, DESIGN.md §10), so cache
	// entries and content addresses are unaffected. Clamped so
	// Workers×Intra stays within GOMAXPROCS; <= 1 keeps runs serial.
	Intra int
	// Backlog bounds the job queue; a submit finding it full is refused
	// with 429 (default 64).
	Backlog int
	// CacheEntries bounds the result cache (default 1024).
	CacheEntries int
	// WaitTimeout caps how long a wait=true submit blocks before
	// degrading to a 202 + poll response (default 60s).
	WaitTimeout time.Duration
	// Checkpoints enables checkpointed sweep execution: jobs whose
	// normalized prefix matches an earlier run fork from its cached
	// engine snapshot instead of re-simulating the prefix. Results are
	// byte-identical either way; the prefix store's counters surface on
	// /metrics.
	Checkpoints bool
	// MaxRetries caps how many times a transiently-failed run (injected
	// fault, budget abort) is re-attempted before its failure is
	// returned. Default 2; negative disables retries. Deterministic
	// failures are never retried — same spec, same failure.
	MaxRetries int
	// RetryBackoff is the pre-retry pause before attempt 1 (default
	// 25ms), doubling per attempt, capped at 1s, with ±25% jitter drawn
	// deterministically from the spec's content address — the same spec
	// backs off the same way every time.
	RetryBackoff time.Duration
	// HedgeAfter, when > 0, launches a second identical attempt for any
	// job still unpublished after this long. The first published result
	// wins; the loser is byte-compared against it (a mismatch is a
	// determinism violation, counted on /metrics). 0 disables hedging.
	HedgeAfter time.Duration
	// RunBudget is the per-attempt wall budget handed to the engine
	// watchdogs (0 = none): an over-budget run aborts with
	// core.ErrBudgetExceeded (transient — retried, never cached) instead
	// of wedging its worker.
	RunBudget time.Duration
	// StateDir enables crash-safe persistence: answered results and
	// pending jobs journal to StateDir/results.wal (replayed on Open so
	// a killed daemon recovers its cache and re-runs in-flight work),
	// and prefix checkpoints write through to StateDir/checkpoints.
	// Empty means fully in-memory.
	StateDir string
	// ShardID names this daemon within a simrouter cluster. It is
	// operational identity only — never part of a spec or result, which
	// stay location-transparent — and surfaces on /metrics so cluster
	// tooling can tell which shard answered a scrape.
	ShardID string
	// Runner executes one normalized spec as the given attempt number
	// (default: experiments.RunSpecAttempt under RunBudget). Tests
	// inject instrumented runners here.
	Runner func(experiments.Spec, int) (core.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backlog <= 0 {
		c.Backlog = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.Runner == nil {
		budget := c.RunBudget
		c.Runner = func(s experiments.Spec, attempt int) (core.Result, error) {
			return experiments.RunSpecAttempt(s, attempt, budget)
		}
	}
	return c
}

// JobResult is the canonical, fully deterministic record of one
// completed run — the bytes the cache stores and every response
// carries. Wall-clock time is deliberately absent (it varies run to
// run and would break cached-vs-fresh byte identity); serving-side
// wall times feed the /metrics histograms instead.
type JobResult struct {
	ID        string              `json:"id"`
	Spec      experiments.Spec    `json:"spec"`
	SimTimePS int64               `json:"sim_time_ps"`
	SimTime   string              `json:"sim_time"`
	NEXStats  nex.Stats           `json:"nex_stats"`
	Devices   []accel.DeviceStats `json:"devices,omitempty"`
	Error     string              `json:"error,omitempty"`
	// ErrorKind classifies a failure: deterministic failures (bad spec,
	// engine panic) are cached forever — same spec, same failure —
	// while transient ones (injected fault, budget abort) were already
	// retried, are never cached, and may succeed on resubmit.
	ErrorKind string `json:"error_kind,omitempty"`
	// Attempt records which run attempt produced this result (0 unless
	// transient failures forced retries).
	Attempt int `json:"attempt,omitempty"`
}

// ErrorKind values.
const (
	ErrorKindDeterministic = "deterministic"
	ErrorKindTransient     = "transient"
)

// transientErr reports whether a run failure is transient: injected
// chaos or a budget abort, where a retry (or a resubmit) can
// legitimately see a different outcome. Everything else is
// deterministic — the same spec will fail the same way forever.
func transientErr(err error) bool {
	return errors.Is(err, faults.ErrInjected) || errors.Is(err, core.ErrBudgetExceeded)
}

// Job states reported on /jobs.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	// StatusCanceled marks a queued job skipped at worker pickup because
	// every client waiting on it had disconnected (nobody left to answer,
	// nothing yet computed worth keeping).
	StatusCanceled = "canceled"
)

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull    = errors.New("simserve: job queue full")
	ErrShuttingDown = errors.New("simserve: shutting down")
)

// job is one in-flight or just-completed run. done is closed after
// result/failed/status are final; until then those fields are guarded
// by the server lock. published flips exactly once — whichever of the
// primary attempt chain or a hedge finishes first wins; the loser's
// bytes are compared, not stored.
type job struct {
	id        string
	spec      experiments.Spec // normalized
	done      chan struct{}
	status    string
	result    []byte
	failed    bool
	transient bool
	published bool
	// keep pins the job to completion regardless of waiters: async
	// submits (the client holds the id and will poll) and WAL-recovered
	// work. waiters counts wait=true requests currently blocked on the
	// job; a queued job whose last waiter disconnects before a worker
	// picks it up is skipped, freeing its queue slot for live traffic.
	keep    bool
	waiters int
}

// closedDone is the pre-closed channel completed-on-arrival jobs
// (cache hits) carry.
var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Server is the simulation-as-a-service engine front end.
type Server struct {
	cfg  Config
	pool *sweep.Pool

	mu     sync.Mutex
	jobs   map[string]*job // in-flight, by content address
	cache  *lruCache
	m      *metrics
	wal    *wal // nil without StateDir
	closed bool
}

// New starts a server (its worker pool runs until Close). It panics on
// a state-directory error; services that want the error use Open.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a server. With StateDir set it first recovers from the
// previous incarnation's journal: answered results re-enter the cache
// (byte-identical — determinism makes the replay sound), and jobs that
// were queued or running when the process died are resubmitted.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Checkpoints {
		// Process-wide, like the executor's parallelism: set before any
		// job runs, never while one is running.
		experiments.SetCheckpoints(true)
	}
	if cfg.Intra > 1 {
		// Process-wide for the same reason; clamped so the pool's workers
		// and each run's stepper lanes share the machine.
		experiments.SetIntra(sweep.ClampIntra(cfg.Workers, cfg.Intra, 0))
	}
	s := &Server{
		cfg:   cfg,
		pool:  sweep.NewPool(cfg.Workers, cfg.Backlog),
		jobs:  map[string]*job{},
		cache: newLRUCache(cfg.CacheEntries),
		m:     newMetrics(),
	}
	if cfg.StateDir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("simserve: state dir: %w", err)
	}
	if cfg.Checkpoints {
		if err := experiments.SetCheckpointDisk(filepath.Join(cfg.StateDir, "checkpoints")); err != nil {
			return nil, err
		}
	}
	w, rec, err := openWAL(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for _, r := range rec.results {
		var jr JobResult
		_ = json.Unmarshal(r.result, &jr) // verified by openWAL
		if jr.ErrorKind == ErrorKindTransient {
			// Answered but not cacheable; keep it out of the cache on
			// replay too.
			continue
		}
		s.cache.put(&cacheEntry{id: r.id, result: r.result, failed: r.failed})
		s.m.walRecoveredResults++
	}
	s.wal = w
	s.mu.Unlock()
	// Resubmit interrupted work through the normal path (which re-journals
	// it into the compacted WAL). The queue is empty at open, so only a
	// pending set larger than the backlog can drop — counted, not silent.
	for _, sp := range rec.pending {
		if _, err := s.submit(sp, false); err != nil {
			s.mu.Lock()
			s.m.walPendingDropped++
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.m.walRecoveredPending++
		s.mu.Unlock()
	}
	return s, nil
}

// Workers reports the worker-pool size.
func (s *Server) Workers() int { return s.pool.Workers() }

// Close stops accepting new jobs, drains queued and in-flight runs to
// completion, and returns. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
	s.mu.Lock()
	s.wal.close()
	s.wal = nil
	s.mu.Unlock()
}

// submit routes one spec: cache hit, singleflight attach, or fresh
// enqueue. Any returned job either is done or will close done when it
// is. waiter=true registers the calling request as a live waiter on the
// returned fresh/deduped job — the caller must balance it with
// releaseWaiters — while waiter=false pins the job to completion even
// if every client goes away (async submits, WAL recovery).
func (s *Server) submit(raw experiments.Spec, waiter bool) (*job, error) {
	n, err := raw.Normalized()
	if err != nil {
		return nil, err
	}
	id, err := n.ID()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache.get(id); ok {
		s.m.cacheHits++
		st := StatusDone
		if e.failed {
			st = StatusFailed
		}
		return &job{id: id, spec: n, done: closedDone, status: st,
			result: e.result, failed: e.failed}, nil
	}
	if j, ok := s.jobs[id]; ok {
		s.m.jobsDeduped++
		s.attach(j, waiter)
		return j, nil
	}
	s.m.cacheMisses++
	if s.closed {
		return nil, ErrShuttingDown
	}
	j := &job{id: id, spec: n, done: make(chan struct{}), status: StatusQueued}
	s.attach(j, waiter)
	switch err := s.pool.TrySubmit(func() { s.run(j) }); {
	case errors.Is(err, sweep.ErrClosed):
		return nil, ErrShuttingDown
	case err != nil:
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.m.jobsSubmitted++
	if specJSON, err := n.CanonicalJSON(); err == nil {
		if werr := s.wal.appendSubmit(id, specJSON); werr != nil {
			s.m.walAppendErrors++
		}
	}
	return j, nil
}

// attach records one more interested party on a job (caller holds the
// lock).
func (s *Server) attach(j *job, waiter bool) {
	if waiter {
		j.waiters++
	} else {
		j.keep = true
	}
}

// releaseWaiters detaches one waiter from each job (a wait=true request
// returning, however it returns). Jobs whose last waiter left while
// still queued are skipped when a worker picks them up.
func (s *Server) releaseWaiters(jobs []*job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		if j.waiters > 0 {
			j.waiters--
		}
	}
}

// keepJobs pins jobs to completion: the client has been told their ids
// (202 + poll) or that they were accepted, so results must materialize
// even if the connection is gone.
func (s *Server) keepJobs(jobs []*job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		j.keep = true
	}
}

// run executes one fresh job on a pool worker: attempt, retry
// transients with deterministic backoff, and publish the final result.
// When hedging is configured, a straggling primary gets a second
// identical attempt racing it; the first published result wins.
//
// A job every waiter abandoned while it sat in the queue is skipped
// here instead of executed: the queue slot was already freed by the
// pickup, and running it would burn a worker to compute an answer
// nobody is waiting for. (Its WAL submit record, if any, is only
// settled at the next compaction — a crash before then re-runs the
// spec, which is merely wasted work, never wrong answers.)
func (s *Server) run(j *job) {
	s.mu.Lock()
	if !j.keep && j.waiters == 0 {
		j.status = StatusCanceled
		delete(s.jobs, j.id)
		s.m.jobsCanceled++
		s.mu.Unlock()
		close(j.done)
		return
	}
	j.status = StatusRunning
	s.m.workersBusy++
	s.mu.Unlock()

	if s.cfg.HedgeAfter > 0 {
		timer := time.AfterFunc(s.cfg.HedgeAfter, func() { s.launchHedge(j) })
		defer timer.Stop()
	}

	start := time.Now()
	res, err, attempt := s.runWithRetries(j)
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)

	s.mu.Lock()
	s.m.workersBusy--
	s.mu.Unlock()
	data, failed, transient := s.marshalResult(j, res, err, attempt)
	s.publish(j, data, failed, transient, wallMS, false)
}

// runWithRetries drives the primary attempt chain: transient failures
// back off (doubling, capped, spec-jittered) and re-run with the next
// attempt number — which matters, because Attempts-windowed injected
// faults expire and budget luck differs, so a retry can genuinely heal.
// Deterministic outcomes return immediately: re-running them buys
// nothing.
func (s *Server) runWithRetries(j *job) (core.Result, error, int) {
	attempt := 0
	for {
		res, err := s.safeRun(j.spec, attempt)
		if err == nil || !transientErr(err) || attempt >= s.cfg.MaxRetries {
			return res, err, attempt
		}
		s.mu.Lock()
		s.m.retriesTotal++
		if errors.Is(err, core.ErrBudgetExceeded) {
			s.m.budgetAborts++
		}
		published := j.published
		s.mu.Unlock()
		if published {
			// A hedge already answered; stop burning the worker.
			return res, err, attempt
		}
		time.Sleep(retryBackoff(j.id, attempt, s.cfg.RetryBackoff))
		attempt++
	}
}

// retryBackoff is the pause before retrying attempt+1: base doubled per
// attempt, capped at 1s, jittered ±25% by a stream derived from the
// spec's content address — deterministic per (spec, attempt), desynced
// across distinct specs.
func retryBackoff(id string, attempt int, base time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	if d > time.Second {
		d = time.Second
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id)) // fnv Write cannot fail
	st := xrand.New(h.Sum64()).Derive(fmt.Sprintf("backoff-%d", attempt))
	f := 0.75 + 0.5*st.Float64()
	return time.Duration(float64(d) * f)
}

// launchHedge submits a second identical attempt for a straggling job.
// The hedge re-runs attempt 0 — by determinism it must produce the
// same bytes the primary's attempt 0 would, so whichever publishes
// first is correct. Hedges only ever publish conclusive results: a
// transient failure is the retry chain's business, so a hedge that
// draws one quietly discards it.
func (s *Server) launchHedge(j *job) {
	s.mu.Lock()
	if j.published || s.closed {
		s.mu.Unlock()
		return
	}
	s.m.hedgesLaunched++
	s.mu.Unlock()
	err := s.pool.TrySubmit(func() {
		start := time.Now()
		res, rerr := s.safeRun(j.spec, 0)
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		if rerr != nil && transientErr(rerr) {
			return
		}
		data, failed, transient := s.marshalResult(j, res, rerr, 0)
		s.publish(j, data, failed, transient, wallMS, true)
	})
	if err != nil {
		// No capacity for speculation: the primary still owns the job.
		s.mu.Lock()
		s.m.hedgesLaunched--
		s.mu.Unlock()
	}
}

// marshalResult renders one attempt's outcome into canonical JobResult
// bytes plus its caching classification.
func (s *Server) marshalResult(j *job, res core.Result, err error, attempt int) (data []byte, failed, transient bool) {
	jr := JobResult{ID: j.id, Spec: j.spec}
	if err != nil {
		jr.Error = err.Error()
		jr.ErrorKind = ErrorKindDeterministic
		jr.Attempt = attempt
		if transientErr(err) {
			jr.ErrorKind = ErrorKindTransient
			transient = true
		}
		if errors.Is(err, core.ErrBudgetExceeded) {
			s.mu.Lock()
			s.m.budgetAborts++
			s.mu.Unlock()
		}
	} else {
		jr.SimTimePS = int64(res.SimTime)
		jr.SimTime = res.SimTime.String()
		jr.NEXStats = res.NEXStats
		jr.Devices = res.Devices
	}
	out, merr := json.Marshal(jr)
	if merr != nil {
		jr = JobResult{ID: j.id, Spec: j.spec, Error: merr.Error(), ErrorKind: ErrorKindDeterministic}
		out, _ = json.Marshal(jr)
	}
	return out, jr.Error != "", transient
}

// publish installs a finished attempt's bytes as the job's result —
// exactly once. The losing side of a hedge race lands here too: its
// bytes are compared against the published ones, and a difference is a
// determinism violation surfaced on /metrics rather than swallowed.
// Transient failures are answered but never cached: the next submit of
// the same spec runs fresh.
func (s *Server) publish(j *job, data []byte, failed, transient bool, wallMS float64, hedge bool) {
	s.mu.Lock()
	if j.published {
		if !bytes.Equal(data, j.result) {
			s.m.hedgeMismatches++
		}
		s.m.hedgesWasted++
		s.mu.Unlock()
		return
	}
	j.published = true
	j.result = data
	j.failed = failed
	j.transient = transient
	if failed {
		j.status = StatusFailed
		s.m.jobsFailed++
		if transient {
			s.m.transientFailures++
		}
	} else {
		j.status = StatusDone
		s.m.jobsCompleted++
	}
	if !transient {
		s.cache.put(&cacheEntry{id: j.id, result: data, failed: failed})
	}
	if werr := s.wal.appendDone(j.id, failed, data); werr != nil {
		s.m.walAppendErrors++
	}
	delete(s.jobs, j.id)
	s.m.observeRun(j.spec.Bench, wallMS)
	if hedge {
		s.m.hedgesWon++
	}
	s.mu.Unlock()
	close(j.done)
}

// safeRun shields the worker pool from a panicking engine: a bad spec
// must fail its own job, not the daemon. An injected-fault panic (a
// custom runner surfacing engine chaos directly) keeps its transient
// classification through the recover.
func (s *Server) safeRun(spec experiments.Spec, attempt int) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && faults.IsInjected(e) {
				err = fmt.Errorf("run aborted by %w", e)
				return
			}
			err = fmt.Errorf("run panicked: %v", r)
		}
	}()
	return s.cfg.Runner(spec, attempt)
}

// Promote installs an externally produced result into the cache — the
// receiving half of the cluster hot-set protocol. The entry is only
// accepted after re-verification against its content address
// (jr.Spec.ID() == id), so a corrupt or hostile pusher cannot poison
// the cache: determinism makes every result self-certifying. Transient
// failures are rejected like everywhere else — they are answers, not
// facts. With StateDir set the promotion journals like a local run, so
// a restarted shard keeps its pushed hot set.
func (s *Server) Promote(id string, failed bool, result []byte) error {
	var jr JobResult
	if err := json.Unmarshal(result, &jr); err != nil {
		s.noteHotsetReject()
		return fmt.Errorf("simserve: promote: %w", err)
	}
	specID, err := jr.Spec.ID()
	if err != nil || specID != id {
		s.noteHotsetReject()
		return fmt.Errorf("simserve: promote: content address mismatch for %s", id)
	}
	if jr.ErrorKind == ErrorKindTransient {
		s.noteHotsetReject()
		return fmt.Errorf("simserve: promote: transient failures are not cacheable")
	}
	if failed != (jr.Error != "") {
		s.noteHotsetReject()
		return fmt.Errorf("simserve: promote: failed flag disagrees with result for %s", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache.get(id); ok {
		// Already warm here; the get refreshed its LRU position.
		s.m.hotsetDuplicates++
		return nil
	}
	s.cache.put(&cacheEntry{id: id, result: result, failed: failed})
	s.m.hotsetPromoted++
	if werr := s.wal.appendDone(id, failed, result); werr != nil {
		s.m.walAppendErrors++
	}
	return nil
}

func (s *Server) noteHotsetReject() {
	s.mu.Lock()
	s.m.hotsetRejected++
	s.mu.Unlock()
}

// lookup finds a job's current status and (when finished) result.
func (s *Server) lookup(id string) (status string, result []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, found := s.jobs[id]; found {
		return j.status, nil, true
	}
	if e, found := s.cache.get(id); found {
		if e.failed {
			return StatusFailed, e.result, true
		}
		return StatusDone, e.result, true
	}
	return "", nil, false
}

// --- HTTP surface ---

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Specs []experiments.Spec `json:"specs"`
	// Wait blocks until every spec has a result (bounded by the
	// server's WaitTimeout) and returns results in spec order.
	Wait bool `json:"wait"`
}

// jobStatus is one entry of an async (or timed-out) submit response.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// maxBatch bounds specs per request; bigger sweeps should batch.
const maxBatch = 4096

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /cluster/hotset", s.handleHotset)
	return mux
}

// hotsetEntry is one pushed result on the POST /cluster/hotset wire
// (the router's hot-set replication protocol). The result bytes are a
// full JobResult; Promote re-derives the content address from them, so
// the id field is a claim to verify, not a fact to trust.
type hotsetEntry struct {
	ID     string          `json:"id"`
	Failed bool            `json:"failed"`
	Result json.RawMessage `json:"result"`
}

// handleHotset accepts a hot-set push: each entry is verified against
// its content address and promoted into the result cache. Bad entries
// are rejected individually — one corrupt entry must not block the
// rest of the batch.
func (s *Server) handleHotset(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	var req struct {
		Entries []hotsetEntry `json:"entries"`
	}
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	promoted, rejected := 0, 0
	for _, e := range req.Entries {
		if err := s.Promote(e.ID, e.Failed, e.Result); err != nil {
			rejected++
			continue
		}
		promoted++
	}
	writeJSON(w, http.StatusOK, struct {
		Promoted int `json:"promoted"`
		Rejected int `json:"rejected"`
	}{promoted, rejected})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		return
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	depth, capacity, workers := s.pool.Depth(), s.pool.Capacity(), s.pool.Workers()
	ck := experiments.CheckpointStats()
	s.mu.Lock()
	s.m.render(&buf, s.cfg.ShardID, depth, capacity, workers, s.cache.len(), s.cache.evictions, ck)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "no specs submitted")
		return
	}
	if len(req.Specs) > maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d specs exceeds the %d-spec limit", len(req.Specs), maxBatch))
		return
	}

	jobs := make([]*job, 0, len(req.Specs))
	if req.Wait {
		// Balance every waiter this request registered, however the
		// request ends (result, timeout, disconnect, mid-batch error).
		defer func() { s.releaseWaiters(jobs) }()
	}
	for i, spec := range req.Specs {
		j, err := s.submit(spec, req.Wait)
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, ErrQueueFull):
			// The specs accepted so far were promised to the client
			// ("accepted %d"), so they run to completion even though this
			// response is an error.
			s.keepJobs(jobs)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(spec)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("spec %d: job queue full (accepted %d of %d specs; resubmit the rest)",
					i, len(jobs), len(req.Specs)))
			return
		case errors.Is(err, ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
	}

	if !req.Wait {
		writeJSON(w, http.StatusAccepted, s.statusEnvelope(jobs))
		return
	}

	deadline := time.Now().Add(s.cfg.WaitTimeout)
	results := make([]json.RawMessage, len(jobs))
	for i, j := range jobs {
		remaining := time.Until(deadline)
		done, gone := waitDone(r.Context(), j, remaining)
		if gone {
			// The client disconnected mid-wait: stop blocking a handler
			// goroutine on an answer nobody will read. The deferred
			// release lets still-queued jobs cancel at pickup.
			return
		}
		if remaining <= 0 || !done {
			// Timed out: hand the client the job IDs to poll. They now
			// must complete even if this client never returns.
			s.keepJobs(jobs)
			writeJSON(w, http.StatusAccepted, s.statusEnvelope(jobs))
			return
		}
		s.mu.Lock()
		results[i] = j.result
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, struct {
		Results []json.RawMessage `json:"results"`
	}{results})
}

// retryAfterSecs derives a deterministic 1–3s Retry-After from the
// refused spec's content address: a fleet of synchronized clients
// sweeping distinct specs spreads its retries instead of re-stampeding
// a recovering queue in unison, while any given spec (and so any given
// test) always sees the same value.
func retryAfterSecs(spec experiments.Spec) int {
	id, err := spec.ID()
	if err != nil {
		return 1
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id)) // fnv Write cannot fail
	return 1 + int(h.Sum64()%3)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, result, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Result json.RawMessage `json:"result,omitempty"`
	}{id, status, result})
}

// statusEnvelope snapshots per-job statuses for async responses.
func (s *Server) statusEnvelope(jobs []*job) any {
	statuses := make([]jobStatus, len(jobs))
	s.mu.Lock()
	for i, j := range jobs {
		statuses[i] = jobStatus{ID: j.id, Status: j.status}
	}
	s.mu.Unlock()
	return struct {
		Jobs []jobStatus `json:"jobs"`
	}{statuses}
}

// waitDone waits for j to finish, up to d, observing the request
// context: gone=true means the client disconnected first.
func waitDone(ctx context.Context, j *job, d time.Duration) (done, gone bool) {
	if d <= 0 {
		return false, false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.done:
		return true, false
	case <-t.C:
		return false, false
	case <-ctx.Done():
		return false, true
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	data, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		http.Error(w, msg, code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}
