// Package simserve exposes the deterministic simulation engines as a
// long-running service: a bounded job queue and worker pool over
// internal/sweep, content-addressed result caching, singleflight
// deduplication of identical in-flight runs, and an operational HTTP
// surface (/jobs, /healthz, /metrics) served by cmd/simd.
//
// The paper's interactive workloads (§6.4 design sweeps, what-if
// epoch/latency exploration) are repeated queries over a small space of
// run configurations. A one-shot CLI redoes the full simulation for
// every question; a service answers a repeated question from cache.
// What makes that sound is determinism, which this repository enforces
// statically (simlint) and at runtime (byte-identical table tests): a
// run is a pure function of its experiments.Spec, so the spec's
// canonical-encoding SHA-256 is a true content address for its result
// and a cached result is byte-identical to a fresh run.
//
// Request flow: each submitted spec is normalized, addressed, and then
// either served from the LRU result cache (cache hit), attached to an
// identical run already queued or executing (singleflight dedup), or
// enqueued onto the bounded worker pool. A full queue sheds load with
// HTTP 429 instead of buffering without limit. Shutdown drains: queued
// and in-flight runs complete (their results land in the cache) before
// Close returns.
package simserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/nex"
	"nexsim/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the worker-pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// Backlog bounds the job queue; a submit finding it full is refused
	// with 429 (default 64).
	Backlog int
	// CacheEntries bounds the result cache (default 1024).
	CacheEntries int
	// WaitTimeout caps how long a wait=true submit blocks before
	// degrading to a 202 + poll response (default 60s).
	WaitTimeout time.Duration
	// Checkpoints enables checkpointed sweep execution: jobs whose
	// normalized prefix matches an earlier run fork from its cached
	// engine snapshot instead of re-simulating the prefix. Results are
	// byte-identical either way; the prefix store's counters surface on
	// /metrics.
	Checkpoints bool
	// Runner executes one normalized spec (default: experiments.RunSpec).
	// Tests inject instrumented runners here.
	Runner func(experiments.Spec) (core.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backlog <= 0 {
		c.Backlog = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 60 * time.Second
	}
	if c.Runner == nil {
		c.Runner = func(s experiments.Spec) (core.Result, error) { return experiments.RunSpec(s) }
	}
	return c
}

// JobResult is the canonical, fully deterministic record of one
// completed run — the bytes the cache stores and every response
// carries. Wall-clock time is deliberately absent (it varies run to
// run and would break cached-vs-fresh byte identity); serving-side
// wall times feed the /metrics histograms instead.
type JobResult struct {
	ID        string              `json:"id"`
	Spec      experiments.Spec    `json:"spec"`
	SimTimePS int64               `json:"sim_time_ps"`
	SimTime   string              `json:"sim_time"`
	NEXStats  nex.Stats           `json:"nex_stats"`
	Devices   []accel.DeviceStats `json:"devices,omitempty"`
	Error     string              `json:"error,omitempty"`
}

// Job states reported on /jobs.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull    = errors.New("simserve: job queue full")
	ErrShuttingDown = errors.New("simserve: shutting down")
)

// job is one in-flight or just-completed run. done is closed after
// result/failed/status are final; until then those fields are guarded
// by the server lock.
type job struct {
	id     string
	spec   experiments.Spec // normalized
	done   chan struct{}
	status string
	result []byte
	failed bool
}

// closedDone is the pre-closed channel completed-on-arrival jobs
// (cache hits) carry.
var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Server is the simulation-as-a-service engine front end.
type Server struct {
	cfg  Config
	pool *sweep.Pool

	mu     sync.Mutex
	jobs   map[string]*job // in-flight, by content address
	cache  *lruCache
	m      *metrics
	closed bool
}

// New starts a server (its worker pool runs until Close).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Checkpoints {
		// Process-wide, like the executor's parallelism: set before any
		// job runs, never while one is running.
		experiments.SetCheckpoints(true)
	}
	return &Server{
		cfg:   cfg,
		pool:  sweep.NewPool(cfg.Workers, cfg.Backlog),
		jobs:  map[string]*job{},
		cache: newLRUCache(cfg.CacheEntries),
		m:     newMetrics(),
	}
}

// Workers reports the worker-pool size.
func (s *Server) Workers() int { return s.pool.Workers() }

// Close stops accepting new jobs, drains queued and in-flight runs to
// completion, and returns. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
}

// submit routes one spec: cache hit, singleflight attach, or fresh
// enqueue. Any returned job either is done or will close done when it
// is.
func (s *Server) submit(raw experiments.Spec) (*job, error) {
	n, err := raw.Normalized()
	if err != nil {
		return nil, err
	}
	id, err := n.ID()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache.get(id); ok {
		s.m.cacheHits++
		st := StatusDone
		if e.failed {
			st = StatusFailed
		}
		return &job{id: id, spec: n, done: closedDone, status: st,
			result: e.result, failed: e.failed}, nil
	}
	if j, ok := s.jobs[id]; ok {
		s.m.jobsDeduped++
		return j, nil
	}
	s.m.cacheMisses++
	if s.closed {
		return nil, ErrShuttingDown
	}
	j := &job{id: id, spec: n, done: make(chan struct{}), status: StatusQueued}
	if !s.pool.TrySubmit(func() { s.run(j) }) {
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.m.jobsSubmitted++
	return j, nil
}

// run executes one fresh job on a pool worker and publishes its result.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.status = StatusRunning
	s.m.workersBusy++
	s.mu.Unlock()

	start := time.Now()
	res, err := s.safeRun(j.spec)
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)

	jr := JobResult{ID: j.id, Spec: j.spec}
	if err != nil {
		jr.Error = err.Error()
	} else {
		jr.SimTimePS = int64(res.SimTime)
		jr.SimTime = res.SimTime.String()
		jr.NEXStats = res.NEXStats
		jr.Devices = res.Devices
	}
	data, merr := json.Marshal(jr)
	if merr != nil {
		jr = JobResult{ID: j.id, Spec: j.spec, Error: merr.Error()}
		data, _ = json.Marshal(jr)
	}

	s.mu.Lock()
	j.result = data
	j.failed = jr.Error != ""
	if j.failed {
		j.status = StatusFailed
		s.m.jobsFailed++
	} else {
		j.status = StatusDone
		s.m.jobsCompleted++
	}
	s.cache.put(&cacheEntry{id: j.id, result: data, failed: j.failed})
	delete(s.jobs, j.id)
	s.m.workersBusy--
	s.m.observeRun(j.spec.Bench, wallMS)
	s.mu.Unlock()
	close(j.done)
}

// safeRun shields the worker pool from a panicking engine: a bad spec
// must fail its own job, not the daemon.
func (s *Server) safeRun(spec experiments.Spec) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run panicked: %v", r)
		}
	}()
	return s.cfg.Runner(spec)
}

// lookup finds a job's current status and (when finished) result.
func (s *Server) lookup(id string) (status string, result []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, found := s.jobs[id]; found {
		return j.status, nil, true
	}
	if e, found := s.cache.get(id); found {
		if e.failed {
			return StatusFailed, e.result, true
		}
		return StatusDone, e.result, true
	}
	return "", nil, false
}

// --- HTTP surface ---

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Specs []experiments.Spec `json:"specs"`
	// Wait blocks until every spec has a result (bounded by the
	// server's WaitTimeout) and returns results in spec order.
	Wait bool `json:"wait"`
}

// jobStatus is one entry of an async (or timed-out) submit response.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// maxBatch bounds specs per request; bigger sweeps should batch.
const maxBatch = 4096

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		return
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	depth, capacity, workers := s.pool.Depth(), s.pool.Capacity(), s.pool.Workers()
	ck := experiments.CheckpointStats()
	s.mu.Lock()
	s.m.render(&buf, depth, capacity, workers, s.cache.len(), s.cache.evictions, ck)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "no specs submitted")
		return
	}
	if len(req.Specs) > maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d specs exceeds the %d-spec limit", len(req.Specs), maxBatch))
		return
	}

	jobs := make([]*job, 0, len(req.Specs))
	for i, spec := range req.Specs {
		j, err := s.submit(spec)
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("spec %d: job queue full (accepted %d of %d specs; resubmit the rest)",
					i, len(jobs), len(req.Specs)))
			return
		case errors.Is(err, ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
	}

	if !req.Wait {
		writeJSON(w, http.StatusAccepted, s.statusEnvelope(jobs))
		return
	}

	deadline := time.Now().Add(s.cfg.WaitTimeout)
	results := make([]json.RawMessage, len(jobs))
	for i, j := range jobs {
		remaining := time.Until(deadline)
		if remaining <= 0 || !waitDone(j, remaining) {
			// Timed out: everything is still queued/running; hand the
			// client the job IDs to poll.
			writeJSON(w, http.StatusAccepted, s.statusEnvelope(jobs))
			return
		}
		s.mu.Lock()
		results[i] = j.result
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, struct {
		Results []json.RawMessage `json:"results"`
	}{results})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, result, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Result json.RawMessage `json:"result,omitempty"`
	}{id, status, result})
}

// statusEnvelope snapshots per-job statuses for async responses.
func (s *Server) statusEnvelope(jobs []*job) any {
	statuses := make([]jobStatus, len(jobs))
	s.mu.Lock()
	for i, j := range jobs {
		statuses[i] = jobStatus{ID: j.id, Status: j.status}
	}
	s.mu.Unlock()
	return struct {
		Jobs []jobStatus `json:"jobs"`
	}{statuses}
}

// waitDone waits for j to finish, up to d.
func waitDone(j *job, d time.Duration) bool {
	select {
	case <-j.done:
		return true
	case <-time.After(d):
		return false
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	data, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		http.Error(w, msg, code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}
