package simserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/faults"
	"nexsim/internal/vclock"
)

// waitResults decodes a wait=true response envelope.
func waitResults(t *testing.T, body []byte) []JobResult {
	t.Helper()
	var env struct {
		Results []JobResult `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad wait envelope %s: %v", body, err)
	}
	return env.Results
}

// waitMetric polls /metrics until name reaches want (background
// publishes — hedge losers, drained primaries — land asynchronously).
func waitMetric(t *testing.T, ts *httptest.Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, page := get(t, ts, "/metrics")
		if metricValue(t, page, name) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d:\n%s", name, want, page)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTransientFailureRetriedNotCached pins the failure split: a
// transiently-failing run is retried, answered with error_kind
// "transient", and never cached — resubmitting it runs fresh.
func TestTransientFailureRetriedNotCached(t *testing.T) {
	var runs int64
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 4, MaxRetries: 1, RetryBackoff: time.Millisecond,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			atomic.AddInt64(&runs, 1)
			return core.Result{}, fmt.Errorf("chaos: %w", faults.ErrInjected)
		},
	})
	body := `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`
	code, first := post(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", code, first)
	}
	jr := waitResults(t, first)[0]
	if jr.ErrorKind != ErrorKindTransient || jr.Error == "" {
		t.Fatalf("transient failure misclassified: %+v", jr)
	}
	if jr.Attempt != 1 {
		t.Fatalf("final attempt = %d, want 1 (one retry)", jr.Attempt)
	}
	if n := atomic.LoadInt64(&runs); n != 2 {
		t.Fatalf("engine ran %d times, want 2 (attempt + retry)", n)
	}
	// Not cached: the same spec runs again on resubmit.
	if code, _ := post(t, ts, body); code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	if n := atomic.LoadInt64(&runs); n != 4 {
		t.Fatalf("engine ran %d times after resubmit, want 4 (transients are never cached)", n)
	}
	_, page := get(t, ts, "/metrics")
	if n := metricValue(t, page, "simserve_retries_total"); n != 2 {
		t.Errorf("retries_total = %d, want 2", n)
	}
	if n := metricValue(t, page, "simserve_transient_failures"); n != 2 {
		t.Errorf("transient_failures = %d, want 2", n)
	}
	if n := metricValue(t, page, "simserve_cache_entries"); n != 0 {
		t.Errorf("cache_entries = %d, want 0", n)
	}
}

// TestRetrySelfHeals: a fault that clears on the next attempt (the
// Attempts-window pattern) is healed by the retry chain — the client
// sees a success, and the healed result is cached like any other.
func TestRetrySelfHeals(t *testing.T) {
	var runs int64
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 4, MaxRetries: 2, RetryBackoff: time.Millisecond,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			atomic.AddInt64(&runs, 1)
			if attempt == 0 {
				return core.Result{}, fmt.Errorf("flaky start: %w", faults.ErrInjected)
			}
			return core.Result{SimTime: 5 * vclock.Microsecond}, nil
		},
	})
	body := `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`
	code, first := post(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", code, first)
	}
	jr := waitResults(t, first)[0]
	if jr.Error != "" || vclock.Duration(jr.SimTimePS) != 5*vclock.Microsecond {
		t.Fatalf("healed run not successful: %+v", jr)
	}
	if n := atomic.LoadInt64(&runs); n != 2 {
		t.Fatalf("engine ran %d times, want 2", n)
	}
	// Healed results are cacheable: resubmit is a byte-identical hit.
	_, second := post(t, ts, body)
	if !bytes.Equal(first, second) {
		t.Fatal("cached healed result differs from fresh response")
	}
	if n := atomic.LoadInt64(&runs); n != 2 {
		t.Fatal("cache miss on resubmit of a healed run")
	}
	_, page := get(t, ts, "/metrics")
	if n := metricValue(t, page, "simserve_retries_total"); n != 1 {
		t.Errorf("retries_total = %d, want 1", n)
	}
	if n := metricValue(t, page, "simserve_jobs_failed"); n != 0 {
		t.Errorf("jobs_failed = %d, want 0", n)
	}
}

// TestBudgetAbortTransient: budget aborts classify as transient (the
// wall budget depends on machine load) and count on /metrics.
func TestBudgetAbortTransient(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 4, MaxRetries: 1, RetryBackoff: time.Millisecond,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			return core.Result{}, fmt.Errorf("nex/dsim run aborted: %w", core.ErrBudgetExceeded)
		},
	})
	code, body := post(t, ts, `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if jr := waitResults(t, body)[0]; jr.ErrorKind != ErrorKindTransient {
		t.Fatalf("budget abort misclassified: %+v", jr)
	}
	_, page := get(t, ts, "/metrics")
	if n := metricValue(t, page, "simserve_budget_aborts"); n != 2 {
		t.Errorf("budget_aborts = %d, want 2 (attempt + retry)", n)
	}
}

// TestHedgeWinsStragglingPrimary: the hedge path end to end — a stuck
// primary is raced by a hedge, the hedge's result answers the client,
// and the late primary's identical bytes are counted wasted, not a
// mismatch.
func TestHedgeWinsStragglingPrimary(t *testing.T) {
	var calls int64
	primaryGate := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 2, Backlog: 4, HedgeAfter: 5 * time.Millisecond,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			if atomic.AddInt64(&calls, 1) == 1 {
				<-primaryGate // straggling primary
			}
			return core.Result{SimTime: 9 * vclock.Microsecond}, nil
		},
	})
	code, body := post(t, ts, `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	if jr := waitResults(t, body)[0]; vclock.Duration(jr.SimTimePS) != 9*vclock.Microsecond {
		t.Fatalf("hedged answer wrong: %+v", jr)
	}
	close(primaryGate) // primary finishes late, loses the publish race
	waitMetric(t, ts, "simserve_hedges_wasted", 1)
	_, page := get(t, ts, "/metrics")
	if n := metricValue(t, page, "simserve_hedges_launched"); n != 1 {
		t.Errorf("hedges_launched = %d, want 1", n)
	}
	if n := metricValue(t, page, "simserve_hedges_won"); n != 1 {
		t.Errorf("hedges_won = %d, want 1", n)
	}
	if n := metricValue(t, page, "simserve_hedge_mismatches"); n != 0 {
		t.Errorf("hedge_mismatches = %d, want 0 (identical results)", n)
	}
	if n := metricValue(t, page, "simserve_jobs_completed"); n != 1 {
		t.Errorf("jobs_completed = %d, want 1 (one job, two attempts)", n)
	}
}

// TestHedgeMismatchDetected: a runner that breaks determinism (the
// primary and its hedge return different results) is caught by the
// losing side's byte comparison and surfaced as a metric.
func TestHedgeMismatchDetected(t *testing.T) {
	var calls int64
	primaryGate := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 2, Backlog: 4, HedgeAfter: 5 * time.Millisecond,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			if atomic.AddInt64(&calls, 1) == 1 {
				<-primaryGate
				return core.Result{SimTime: 111 * vclock.Microsecond}, nil
			}
			return core.Result{SimTime: 222 * vclock.Microsecond}, nil
		},
	})
	code, body := post(t, ts, `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	// The hedge published first; its result is the answer.
	if jr := waitResults(t, body)[0]; vclock.Duration(jr.SimTimePS) != 222*vclock.Microsecond {
		t.Fatalf("expected hedge's result, got %+v", jr)
	}
	close(primaryGate)
	waitMetric(t, ts, "simserve_hedge_mismatches", 1)
}

// TestWALRecoveryServesCache: results answered before a shutdown are
// served byte-identically by the next incarnation, without running the
// engine.
func TestWALRecoveryServesCache(t *testing.T) {
	dir := t.TempDir()
	body := `{"specs":[{"bench":"npb-ep.8","seed":7}],"wait":true}`

	srv1 := New(Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			return core.Result{SimTime: 42 * vclock.Microsecond}, nil
		}})
	ts1 := httptest.NewServer(srv1.Handler())
	code, first := post(t, ts1, body)
	ts1.Close()
	srv1.Close()
	if code != http.StatusOK {
		t.Fatalf("first incarnation: status %d, body %s", code, first)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			panic("recovered result must not re-run")
		}})
	code, second := post(t, ts2, body)
	if code != http.StatusOK {
		t.Fatalf("second incarnation: status %d, body %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("recovered response differs:\n%s\n%s", first, second)
	}
	_, page := get(t, ts2, "/metrics")
	if n := metricValue(t, page, "simserve_wal_recovered_results"); n != 1 {
		t.Errorf("wal_recovered_results = %d, want 1", n)
	}
	if n := metricValue(t, page, "simserve_jobs_submitted"); n != 0 {
		t.Errorf("jobs_submitted = %d, want 0 (served from recovered cache)", n)
	}
}

// TestWALPendingResubmittedAfterCrash: a job in flight when the process
// dies (simulated by abandoning the server without Close) is journaled
// as pending and re-executed by the next incarnation.
func TestWALPendingResubmittedAfterCrash(t *testing.T) {
	dir := t.TempDir()
	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 9}
	stuck := make(chan struct{})
	t.Cleanup(func() { close(stuck) })
	srv1 := New(Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			<-stuck // wedged until test cleanup — the "crashed" run
			return core.Result{}, nil
		}})
	if _, err := srv1.submit(spec, false); err != nil {
		t.Fatal(err)
	}
	// No Close: srv1 is abandoned mid-run, like a kill -9.

	var ran int64
	srv2 := New(Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			atomic.AddInt64(&ran, 1)
			return core.Result{SimTime: 3 * vclock.Microsecond}, nil
		}})
	t.Cleanup(srv2.Close)

	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status, _, ok := srv2.lookup(id); ok && status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered pending job never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := atomic.LoadInt64(&ran); n != 1 {
		t.Fatalf("recovered job ran %d times, want 1", n)
	}
	srv2.mu.Lock()
	recovered := srv2.m.walRecoveredPending
	srv2.mu.Unlock()
	if recovered != 1 {
		t.Fatalf("wal_recovered_pending = %d, want 1", recovered)
	}
}

// TestWALTornTailAndBadRecordsDropped constructs a journal with one
// good done record, one whose result does not match its content address,
// one transient failure, and a torn tail — only the good record may be
// replayed, and Open must compact the journal back to a clean file.
func TestWALTornTailAndBadRecordsDropped(t *testing.T) {
	dir := t.TempDir()
	mkDone := func(seed uint64, kind string) (string, []byte) {
		t.Helper()
		n, err := experiments.Spec{Bench: "npb-ep.8", Seed: seed}.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		id, err := n.ID()
		if err != nil {
			t.Fatal(err)
		}
		jr := JobResult{ID: id, Spec: n, SimTimePS: 55000, SimTime: "55ns"}
		if kind != "" {
			jr = JobResult{ID: id, Spec: n, Error: "chaos", ErrorKind: kind}
		}
		data, err := json.Marshal(jr)
		if err != nil {
			t.Fatal(err)
		}
		return id, data
	}

	goodID, goodData := mkDone(11, "")
	_, mismatchData := mkDone(12, "")
	transID, transData := mkDone(13, ErrorKindTransient)
	var buf bytes.Buffer
	appendRecord(&buf, walDone, donePayload(goodID, false, goodData))
	// Checksummed but content-address-mismatched: id does not equal the
	// embedded spec's address.
	appendRecord(&buf, walDone, donePayload("deadbeef", false, mismatchData))
	appendRecord(&buf, walDone, donePayload(transID, true, transData))
	buf.Write([]byte{walSubmit, 0xff, 0x03}) // torn mid-append
	if err := os.WriteFile(filepath.Join(dir, walName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			return core.Result{}, nil
		}})
	t.Cleanup(srv.Close)

	status, result, ok := srv.lookup(goodID)
	if !ok || status != StatusDone || !bytes.Equal(result, goodData) {
		t.Fatalf("good record not recovered: ok=%v status=%q", ok, status)
	}
	if _, _, ok := srv.lookup("deadbeef"); ok {
		t.Fatal("address-mismatched record was replayed")
	}
	if _, _, ok := srv.lookup(transID); ok {
		t.Fatal("transient failure re-entered the cache on replay")
	}

	raw, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	recs, goodLen := parseRecords(raw)
	if goodLen != len(raw) {
		t.Fatalf("compacted journal still has a bad tail at %d/%d", goodLen, len(raw))
	}
	// The mismatched record and the torn tail are gone; the good result
	// and the answered-but-uncacheable transient record survive (the
	// transient record marks its job answered, so recovery won't re-run
	// it, but it never re-enters the cache).
	if len(recs) != 2 || recs[0].id != goodID || recs[1].id != transID {
		t.Fatalf("compacted journal has %d records, want good + transient", len(recs))
	}
	srv.mu.Lock()
	recovered := srv.m.walRecoveredResults
	srv.mu.Unlock()
	if recovered != 1 {
		t.Fatalf("wal_recovered_results = %d, want 1", recovered)
	}
}

// TestOpenBadStateDir: an unusable state directory is a structured Open
// error, not a panic'd daemon.
func TestOpenBadStateDir(t *testing.T) {
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{StateDir: f}); err == nil {
		t.Fatal("Open succeeded with a file as its state dir")
	}
}
