package simserve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"nexsim/internal/experiments"
)

// Write-ahead journal for crash-safe serving: every accepted job
// appends a submit record, every answered job a done record carrying
// the canonical JobResult bytes. After a crash (kill -9 included), Open
// replays the journal: done results re-enter the cache byte-identical,
// and submits without a matching done — jobs that were queued or
// running at the moment of death — are re-executed. Determinism makes
// the replayed cache sound: a recovered result is exactly what
// re-running its spec would produce, which scripts/crash_smoke.sh
// verifies byte for byte.
//
// Record layout (little-endian):
//
//	u8  kind     (1 = submit, 2 = done)
//	u32 len(payload)
//	payload
//	32B sha256(payload)
//
// submit payload: u32 len(id) | id | canonical spec JSON
// done payload:   u8 failed | u32 len(id) | id | JobResult JSON
//
// A crash mid-append leaves a torn tail; replay verifies each record's
// checksum and truncates the journal at the first bad byte, dropping
// only the record being written when the process died. Replayed done
// records are additionally verified against their content address
// (jr.Spec.ID() == id), so a corrupted-but-checksummed entry can never
// poison the cache.

const (
	walSubmit byte = 1
	walDone   byte = 2
)

// walName is the journal's filename under the state directory.
const walName = "results.wal"

// wal is an append-only journal handle. Appends are serialized by the
// server's lock.
type wal struct {
	f    *os.File
	path string
}

// walRecord is one replayed journal record.
type walRecord struct {
	kind   byte
	id     string
	failed bool
	spec   []byte // submit: canonical spec JSON
	result []byte // done: canonical JobResult JSON
}

func appendRecord(buf *bytes.Buffer, kind byte, payload []byte) {
	buf.WriteByte(kind)
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(payload)))
	buf.Write(lb[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
}

func submitPayload(id string, specJSON []byte) []byte {
	var b bytes.Buffer
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(id)))
	b.Write(lb[:])
	b.WriteString(id)
	b.Write(specJSON)
	return b.Bytes()
}

func donePayload(id string, failed bool, result []byte) []byte {
	var b bytes.Buffer
	if failed {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(id)))
	b.Write(lb[:])
	b.WriteString(id)
	b.Write(result)
	return b.Bytes()
}

// parseRecords replays data, returning every intact record and the
// offset of the first torn/corrupt byte (== len(data) when clean).
func parseRecords(data []byte) (recs []walRecord, goodLen int) {
	off := 0
	for off < len(data) {
		if off+1+4 > len(data) {
			return recs, off
		}
		kind := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1:]))
		body := off + 1 + 4
		end := body + plen + sha256.Size
		if (kind != walSubmit && kind != walDone) || plen < 5 || end > len(data) {
			return recs, off
		}
		payload := data[body : body+plen]
		sum := sha256.Sum256(payload)
		if !bytes.Equal(sum[:], data[body+plen:end]) {
			return recs, off
		}
		r, ok := parsePayload(kind, payload)
		if !ok {
			return recs, off
		}
		recs = append(recs, r)
		off = end
	}
	return recs, off
}

func parsePayload(kind byte, payload []byte) (walRecord, bool) {
	r := walRecord{kind: kind}
	if kind == walDone {
		r.failed = payload[0] != 0
		payload = payload[1:]
	}
	if len(payload) < 4 {
		return r, false
	}
	idLen := int(binary.LittleEndian.Uint32(payload))
	if 4+idLen > len(payload) {
		return r, false
	}
	r.id = string(payload[4 : 4+idLen])
	rest := append([]byte(nil), payload[4+idLen:]...)
	if kind == walDone {
		r.result = rest
	} else {
		r.spec = rest
	}
	return r, true
}

// walRecovery is what replaying a journal yields: answered results in
// journal order and still-pending specs in submission order.
type walRecovery struct {
	results []walRecord        // verified done records
	pending []experiments.Spec // submits with no done record
	// dropped counts records discarded during verification (corrupt
	// tail bytes count as one).
	dropped int
}

// openWAL replays (and compacts) the journal at dir/walName and returns
// an append handle positioned at its end. Every returned done record is
// verified: the JobResult parses and its spec's content address equals
// the record id.
func openWAL(dir string) (*wal, walRecovery, error) {
	path := filepath.Join(dir, walName)
	var rec walRecovery
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	recs, goodLen := parseRecords(data)
	if goodLen < len(data) {
		rec.dropped++
	}

	done := map[string]bool{}
	var pendingIDs []string
	pendingSpec := map[string]experiments.Spec{}
	for _, r := range recs {
		switch r.kind {
		case walDone:
			var jr JobResult
			if err := json.Unmarshal(r.result, &jr); err != nil {
				rec.dropped++
				continue
			}
			id, err := jr.Spec.ID()
			if err != nil || id != r.id {
				rec.dropped++
				continue
			}
			if !done[r.id] {
				done[r.id] = true
				rec.results = append(rec.results, r)
			}
		case walSubmit:
			var sp experiments.Spec
			if err := json.Unmarshal(r.spec, &sp); err != nil {
				rec.dropped++
				continue
			}
			if _, seen := pendingSpec[r.id]; !seen {
				pendingIDs = append(pendingIDs, r.id)
				pendingSpec[r.id] = sp
			}
		}
	}
	for _, id := range pendingIDs {
		if !done[id] {
			rec.pending = append(rec.pending, pendingSpec[id])
		}
	}

	// Compact: rewrite only the live records (answered results, pending
	// submits) through a temp file + rename, so the journal never grows
	// without bound and a crash during compaction keeps the old journal.
	var buf bytes.Buffer
	for _, r := range rec.results {
		appendRecord(&buf, walDone, donePayload(r.id, r.failed, r.result))
	}
	for _, id := range pendingIDs {
		if done[id] {
			continue
		}
		specJSON, err := json.Marshal(pendingSpec[id])
		if err != nil {
			continue
		}
		appendRecord(&buf, walSubmit, submitPayload(id, specJSON))
	}
	tmp, err := os.CreateTemp(dir, "wal-tmp-*")
	if err != nil {
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("simserve: wal: %w", err)
	}
	return &wal{f: f, path: path}, rec, nil
}

// appendSubmit journals one accepted job. Nil-receiver safe (stateless
// servers skip journaling).
func (w *wal) appendSubmit(id string, specJSON []byte) error {
	if w == nil {
		return nil
	}
	var buf bytes.Buffer
	appendRecord(&buf, walSubmit, submitPayload(id, specJSON))
	_, err := w.f.Write(buf.Bytes())
	return err
}

// appendDone journals one answered job; the sync makes the result
// durable before the response that announces it can race a crash.
func (w *wal) appendDone(id string, failed bool, result []byte) error {
	if w == nil {
		return nil
	}
	var buf bytes.Buffer
	appendRecord(&buf, walDone, donePayload(id, failed, result))
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return err
	}
	return w.f.Sync()
}

// close releases the journal handle.
func (w *wal) close() {
	if w != nil {
		_ = w.f.Close()
	}
}
