package simserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/vclock"
)

// cheapSpec is a fast real-engine run (one NPB kernel under NEX).
var cheapSpec = experiments.Spec{Bench: "npb-ep.8", EpochNS: 1000}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// metricValue extracts one counter from a /metrics page.
func metricValue(t *testing.T, page []byte, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(string(page), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, page)
	return 0
}

// TestEndToEnd drives the real engine over HTTP: submit a batch
// asynchronously, poll each job to completion, then fetch results and
// check them against a direct RunSpec call.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Backlog: 16})

	specs := []experiments.Spec{
		cheapSpec,
		{Bench: "npb-ep.8", Host: "reference"},
	}
	body, err := json.Marshal(struct {
		Specs []experiments.Spec `json:"specs"`
	}{specs})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := post(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", code, resp)
	}
	var env struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(resp, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(env.Jobs))
	}

	// Submission order must be preserved: job i is spec i.
	for i, spec := range specs {
		wantID, err := spec.ID()
		if err != nil {
			t.Fatal(err)
		}
		if env.Jobs[i].ID != wantID {
			t.Fatalf("job %d id %s, want content address %s", i, env.Jobs[i].ID, wantID)
		}
	}

	// Poll to completion.
	results := make([]JobResult, 2)
	for i, js := range env.Jobs {
		var last []byte
		deadline := time.Now().Add(30 * time.Second)
		for {
			code, out := get(t, ts, "/jobs/"+js.ID)
			if code != http.StatusOK {
				t.Fatalf("poll %s: status %d, body %s", js.ID, code, out)
			}
			var poll struct {
				Status string          `json:"status"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(out, &poll); err != nil {
				t.Fatal(err)
			}
			if poll.Status == StatusDone {
				last = poll.Result
				break
			}
			if poll.Status == StatusFailed {
				t.Fatalf("job %s failed: %s", js.ID, poll.Result)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s after 30s", js.ID, poll.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := json.Unmarshal(last, &results[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Results must match a direct engine run (determinism over HTTP).
	for i, spec := range specs {
		want, err := experiments.RunSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := vclock.Duration(results[i].SimTimePS); got != want.SimTime {
			t.Errorf("spec %d: served sim time %v, direct run %v", i, got, want.SimTime)
		}
	}

	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz status %d", code)
	}
	if code, _ := get(t, ts, "/jobs/no-such-id"); code != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", code)
	}
}

// TestCacheHitByteIdentity pins the acceptance property: a resubmitted
// identical spec is served from cache, the response body is
// byte-identical to the first (fresh) response, and /metrics records
// the hit.
func TestCacheHitByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Backlog: 16})

	body := `{"specs":[{"bench":"npb-ep.8","epoch_ns":1000}],"wait":true}`
	code1, first := post(t, ts, body)
	if code1 != http.StatusOK {
		t.Fatalf("first submit: status %d, body %s", code1, first)
	}
	code2, second := post(t, ts, body)
	if code2 != http.StatusOK {
		t.Fatalf("resubmit: status %d, body %s", code2, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from fresh run:\n%s\n%s", first, second)
	}

	// An explicitly-spelled default is the same content address, so it
	// also hits.
	spelled := `{"specs":[{"bench":"npb-ep.8","epoch_ns":1000,"host":"nex","seed":42}],"wait":true}`
	code3, third := post(t, ts, spelled)
	if code3 != http.StatusOK {
		t.Fatalf("spelled resubmit: status %d", code3)
	}
	if !bytes.Equal(first, third) {
		t.Fatal("explicit-default spelling missed the cache")
	}

	_, page := get(t, ts, "/metrics")
	if hits := metricValue(t, page, "simserve_cache_hits"); hits != 2 {
		t.Errorf("cache_hits = %d, want 2", hits)
	}
	if misses := metricValue(t, page, "simserve_cache_misses"); misses != 1 {
		t.Errorf("cache_misses = %d, want 1", misses)
	}
	if n := metricValue(t, page, "simserve_jobs_completed"); n != 1 {
		t.Errorf("jobs_completed = %d, want 1 (engine must run once)", n)
	}
	if !strings.Contains(string(page), `simserve_bench_wall_ms_count{bench="npb-ep.8"} 1`) {
		t.Errorf("per-bench wall histogram missing:\n%s", page)
	}
}

// TestSingleflightDedup submits the same spec concurrently and checks
// the engine ran once: later submits attach to the in-flight job.
func TestSingleflightDedup(t *testing.T) {
	var (
		runs    int
		runsMu  sync.Mutex
		release = make(chan struct{})
	)
	srv, ts := newTestServer(t, Config{
		Workers: 4, Backlog: 16,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			runsMu.Lock()
			runs++
			runsMu.Unlock()
			<-release
			return core.Result{SimTime: 123 * vclock.Microsecond}, nil
		},
	})

	const clients = 8
	body := `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`
	var wg sync.WaitGroup
	responses := make([][]byte, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				return
			}
			codes[i], responses[i] = resp.StatusCode, buf.Bytes()
		}(i)
	}

	// Wait until the one fresh run is in flight, then let it finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runsMu.Lock()
		n := runs
		runsMu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no run started")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	runsMu.Lock()
	defer runsMu.Unlock()
	if runs != 1 {
		t.Fatalf("engine ran %d times for %d identical submits, want 1", runs, clients)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, codes[i], responses[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("client %d saw a different body", i)
		}
	}
	// 1 fresh submit + (clients-1) split between dedup (in-flight) and
	// cache hits (after completion).
	srv.mu.Lock()
	deduped, hits := srv.m.jobsDeduped, srv.m.cacheHits
	srv.mu.Unlock()
	if deduped+hits != clients-1 {
		t.Errorf("deduped(%d) + cache hits(%d) = %d, want %d", deduped, hits, deduped+hits, clients-1)
	}
}

// TestQueueFull429 fills the worker and the queue with blocked jobs and
// checks the next distinct submit is refused with 429.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 1,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			<-release
			return core.Result{}, nil
		},
	})
	defer close(release)

	// Distinct specs (distinct seeds) so nothing dedups. The first
	// submit occupies the worker (wait for it to start), the second
	// fills the queue slot; the spare covers the race where the second
	// is dequeued before the third arrives.
	submit := func(seed int) (int, []byte) {
		return post(t, ts, fmt.Sprintf(`{"specs":[{"bench":"npb-ep.8","seed":%d}]}`, seed))
	}
	if code, body := submit(1); code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d, body %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, page := get(t, ts, "/metrics")
		if metricValue(t, page, "simserve_workers_busy") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, body := submit(2); code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d, body %s", code, body)
	}
	code, body := submit(3)
	if code == http.StatusAccepted {
		// The queue had drained job 2 into... impossible: the only
		// worker is blocked in job 1. Accept only 429 here.
		t.Fatalf("submit 3 accepted with a full queue (body %s)", body)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: status %d, want 429 (body %s)", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body not a JSON error: %s", body)
	}
}

// TestGracefulDrain checks Close completes queued work: results of
// in-flight jobs land in the cache, and new submits are refused while
// draining.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		Workers: 1, Backlog: 4,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			close(started)
			<-release
			return core.Result{SimTime: 7 * vclock.Microsecond}, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 99}
	j, err := srv.submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()

	// Close must be draining, not done, while the job is blocked.
	select {
	case <-closed:
		t.Fatal("Close returned with a job still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// Draining refuses fresh work...
	if _, err := srv.submit(experiments.Spec{Bench: "npb-ep.8", Seed: 100}, false); err == nil {
		t.Fatal("submit accepted while draining")
	}

	close(release)
	<-closed
	<-j.done

	// ...but the drained job's result is served from cache afterwards.
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	status, result, ok := srv.lookup(id)
	if !ok || status != StatusDone {
		t.Fatalf("drained job not in cache: ok=%v status=%q", ok, status)
	}
	var jr JobResult
	if err := json.Unmarshal(result, &jr); err != nil {
		t.Fatal(err)
	}
	if vclock.Duration(jr.SimTimePS) != 7*vclock.Microsecond {
		t.Fatalf("drained result sim time %d", jr.SimTimePS)
	}
}

// TestFailedJobCachedDeterministically checks a panicking run fails its
// job (daemon survives) and the failure is cached like any result.
func TestFailedJobCachedDeterministically(t *testing.T) {
	runs := 0
	var mu sync.Mutex
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 4,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			panic("synthetic engine failure")
		},
	})
	body := `{"specs":[{"bench":"npb-ep.8"}],"wait":true}`
	code, first := post(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if !strings.Contains(string(first), "synthetic engine failure") {
		t.Fatalf("failure not reported: %s", first)
	}
	_, second := post(t, ts, body)
	if !bytes.Equal(first, second) {
		t.Fatal("cached failure differs from fresh failure")
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("failed spec ran %d times, want 1 (failures are deterministic too)", runs)
	}
	_, page := get(t, ts, "/metrics")
	if n := metricValue(t, page, "simserve_jobs_failed"); n != 1 {
		t.Errorf("jobs_failed = %d, want 1", n)
	}
}

// TestLRUCacheEviction pins the cache bound.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(&cacheEntry{id: "a", result: []byte("1")})
	c.put(&cacheEntry{id: "b", result: []byte("2")})
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put(&cacheEntry{id: "c", result: []byte("3")})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if c.len() != 2 || c.evictions != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", c.len(), c.evictions)
	}
}

// TestBadRequests pins the 400 surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Backlog: 4})
	cases := []string{
		``,
		`{"specs":[]}`,
		`{"specs":[{"bench":"no-such-bench"}]}`,
		`{"specs":[{"bench":"npb-ep.8","host":"qemu"}]}`,
		`{"specs":[{"bench":"npb-ep.8","bogus_field":1}]}`,
	}
	for _, body := range cases {
		if code, resp := post(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d (want 400), resp %s", body, code, resp)
		}
	}
}
