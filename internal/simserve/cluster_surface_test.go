package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/vclock"
)

// A wait=true client that disconnects while its job is still queued
// must free the queue slot: the worker skips the job at pickup instead
// of computing an answer nobody will read.
func TestClientDisconnectCancelsQueuedJob(t *testing.T) {
	block := make(chan struct{})
	var ran int64
	srv, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 8,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			atomic.AddInt64(&ran, 1)
			<-block
			return core.Result{SimTime: vclock.Duration(s.Seed) * vclock.Microsecond}, nil
		},
	})

	// Occupy the single worker with a kept (async) job.
	code, _ := post(t, ts, `{"specs":[{"bench":"npb-ep.8","seed":1}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("warmup submit: HTTP %d", code)
	}
	for atomic.LoadInt64(&ran) == 0 {
		time.Sleep(time.Millisecond)
	}

	// A second spec waits in the queue behind it, with a cancellable
	// client.
	abandoned := experiments.Spec{Bench: "npb-ep.8", Seed: 2}
	id, err := abandoned.ID()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(struct {
		Specs []experiments.Spec `json:"specs"`
		Wait  bool               `json:"wait"`
	}{[]experiments.Spec{abandoned}, true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, derr := http.DefaultClient.Do(req)
		errCh <- derr
	}()

	// Wait until the job is queued, then hang up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, _, ok := srv.lookup(id); ok && st == StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned job never appeared in the queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if derr := <-errCh; derr == nil {
		t.Fatal("expected the canceled request to error")
	}
	// The handler's deferred release must run before the worker frees up,
	// so give it a moment to drop the waiter.
	waitFor(t, 2*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		j, ok := srv.jobs[id]
		return ok && j.waiters == 0 && !j.keep
	}, "waiter never released after disconnect")

	// Free the worker; the abandoned job must be skipped, not run.
	close(block)
	waitFor(t, 2*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.m.jobsCanceled == 1
	}, "abandoned job was never canceled at pickup")

	if got := atomic.LoadInt64(&ran); got != 1 {
		t.Fatalf("runner ran %d times, want 1 (abandoned job must not execute)", got)
	}
	if _, _, ok := srv.lookup(id); ok {
		t.Fatal("canceled job still resolvable; it should have been dropped")
	}
	_, page := get(t, ts, "/metrics")
	if v := metricValue(t, page, "simserve_jobs_canceled"); v != 1 {
		t.Fatalf("simserve_jobs_canceled = %d, want 1", v)
	}
}

// An async (no-wait) submit is pinned to completion even though its
// client never waits: keep jobs must survive worker pickup.
func TestAsyncSubmitRunsWithoutWaiters(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 4,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			return core.Result{SimTime: vclock.Microsecond}, nil
		},
	})
	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 3}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	code, _ := post(t, ts, `{"specs":[{"bench":"npb-ep.8","seed":3}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitFor(t, 2*time.Second, func() bool {
		st, _, ok := srv.lookup(id)
		return ok && st == StatusDone
	}, "async job never completed")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// The 429 Retry-After is jittered per spec (1-3s) but deterministic:
// the same refused spec always quotes the same wait.
func TestRetryAfterJitterDeterministic(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{
		Workers: 1, Backlog: 1,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			<-block
			return core.Result{}, nil
		},
	})
	// Fill the worker and the queue.
	for seed := 1; seed <= 2; seed++ {
		code, _ := post(t, ts, fmt.Sprintf(`{"specs":[{"bench":"npb-ep.8","seed":%d}]}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("fill submit %d: HTTP %d", seed, code)
		}
	}

	refused := experiments.Spec{Bench: "npb-ep.8", Seed: 99}
	want := retryAfterSecs(refused)
	if want < 1 || want > 3 {
		t.Fatalf("retryAfterSecs = %d, want within [1,3]", want)
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			bytes.NewReader([]byte(`{"specs":[{"bench":"npb-ep.8","seed":99}]}`)))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("refusal %d: HTTP %d", i, resp.StatusCode)
		}
		got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || got != want {
			t.Fatalf("refusal %d: Retry-After %q, want %d", i, resp.Header.Get("Retry-After"), want)
		}
	}
	// Distinct specs spread: at least two different values across a
	// handful of addresses (fnv over the content address).
	seen := map[int]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		seen[retryAfterSecs(experiments.Spec{Bench: "npb-ep.8", Seed: seed})] = true
	}
	if len(seen) < 2 {
		t.Fatalf("retry jitter is constant across specs: %v", seen)
	}
}

// Promote only accepts results that verify against their content
// address — the hot-set protocol's poisoning defense.
func TestPromoteVerifiesContentAddress(t *testing.T) {
	runner := func(s experiments.Spec, attempt int) (core.Result, error) {
		return core.Result{SimTime: vclock.Duration(s.Seed) * vclock.Microsecond}, nil
	}
	src, ts := newTestServer(t, Config{Workers: 1, Backlog: 4, Runner: runner})
	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 5}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	code, _ := post(t, ts, `{"specs":[{"bench":"npb-ep.8","seed":5}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("source run: HTTP %d", code)
	}
	_, result, ok := src.lookup(id)
	if !ok || len(result) == 0 {
		t.Fatal("source result missing")
	}

	dst := New(Config{Workers: 1, Backlog: 4, Runner: runner})
	defer dst.Close()

	// Valid push: verified, cached, then served byte-identically.
	if err := dst.Promote(id, false, result); err != nil {
		t.Fatalf("valid promote rejected: %v", err)
	}
	if st, got, ok := dst.lookup(id); !ok || st != StatusDone || !bytes.Equal(got, result) {
		t.Fatalf("promoted result not served: ok=%v status=%s identical=%v", ok, st, bytes.Equal(got, result))
	}
	// Re-push of a cached entry is a duplicate, not an error.
	if err := dst.Promote(id, false, result); err != nil {
		t.Fatalf("duplicate promote errored: %v", err)
	}

	// Wrong address: rejected.
	if err := dst.Promote("deadbeef", false, result); err == nil {
		t.Fatal("promote accepted a result under the wrong content address")
	}
	// Tampered bytes: the claimed id no longer matches the embedded spec.
	var jr JobResult
	if err := json.Unmarshal(result, &jr); err != nil {
		t.Fatal(err)
	}
	jr.Spec.Seed = 6
	tampered, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Promote(id, false, tampered); err == nil {
		t.Fatal("promote accepted tampered result bytes")
	}
	// Transient failures are never cacheable.
	jr.Spec.Seed = 5
	jr.Error = "injected"
	jr.ErrorKind = ErrorKindTransient
	transient, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Promote(id, true, transient); err == nil {
		t.Fatal("promote accepted a transient failure")
	}
	// Failed flag must agree with the result.
	if err := dst.Promote(id, true, result); err == nil {
		t.Fatal("promote accepted a failed flag contradicting the result")
	}

	dst.mu.Lock()
	promoted, dups, rejected := dst.m.hotsetPromoted, dst.m.hotsetDuplicates, dst.m.hotsetRejected
	dst.mu.Unlock()
	if promoted != 1 || dups != 1 || rejected != 4 {
		t.Fatalf("hotset counters = %d/%d/%d, want 1 promoted, 1 duplicate, 4 rejected", promoted, dups, rejected)
	}
}

// The POST /cluster/hotset endpoint promotes good entries and rejects
// bad ones individually.
func TestHotsetEndpoint(t *testing.T) {
	runner := func(s experiments.Spec, attempt int) (core.Result, error) {
		return core.Result{SimTime: vclock.Duration(s.Seed) * vclock.Microsecond}, nil
	}
	src, srcTS := newTestServer(t, Config{Workers: 1, Backlog: 4, Runner: runner})
	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 8}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, srcTS, `{"specs":[{"bench":"npb-ep.8","seed":8}],"wait":true}`); code != http.StatusOK {
		t.Fatalf("source run: HTTP %d", code)
	}
	_, result, _ := src.lookup(id)

	_, dstTS := newTestServer(t, Config{Workers: 1, Backlog: 4, Runner: runner})
	push, err := json.Marshal(struct {
		Entries []hotsetEntry `json:"entries"`
	}{[]hotsetEntry{
		{ID: id, Failed: false, Result: result},
		{ID: "bogus", Failed: false, Result: result},
	}})
	if err != nil {
		t.Fatal(err)
	}
	code, body := post2(t, dstTS.URL+"/cluster/hotset", push)
	if code != http.StatusOK {
		t.Fatalf("hotset push: HTTP %d: %s", code, body)
	}
	var summary struct{ Promoted, Rejected int }
	if err := json.Unmarshal(body, &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Promoted != 1 || summary.Rejected != 1 {
		t.Fatalf("push summary = %+v, want 1 promoted 1 rejected", summary)
	}
	// The receiving shard now serves the result from cache.
	code, got := post(t, dstTS, `{"specs":[{"bench":"npb-ep.8","seed":8}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("warm serve: HTTP %d", code)
	}
	var env struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(got, &env); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Results[0], result) {
		t.Fatal("promoted result served with different bytes")
	}
}

// post2 POSTs raw bytes to a full URL.
func post2(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// WAL replay racing fresh submits: a state dir with pending jobs is
// reopened while clients concurrently submit the same and new specs.
// Every spec resolves exactly once per content address, results are
// correct, and a third incarnation recovers the full result set.
func TestWALReplayWithConcurrentSubmits(t *testing.T) {
	dir := t.TempDir()
	stuck := make(chan struct{})
	t.Cleanup(func() { close(stuck) })
	var ran int64
	srv1 := New(Config{Workers: 1, Backlog: 16, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			<-stuck // wedged until test cleanup — the "crashed" runs
			return core.Result{}, nil
		}})
	// Journal 4 pending specs, then "crash" (no Close). The wedge keeps
	// srv1 from ever writing done records into the journal srv2 is about
	// to compact.
	for seed := uint64(1); seed <= 4; seed++ {
		if _, err := srv1.submit(experiments.Spec{Bench: "npb-ep.8", Seed: seed}, false); err != nil {
			t.Fatal(err)
		}
	}

	// Second incarnation: recovery replays the WAL (compacting it) while
	// concurrent clients re-submit overlapping and fresh specs.
	srv2 := New(Config{Workers: 2, Backlog: 32, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			atomic.AddInt64(&ran, 1)
			time.Sleep(time.Millisecond) // hold jobs in flight so submits dedup
			return core.Result{SimTime: vclock.Duration(s.Seed) * vclock.Microsecond}, nil
		}})
	var wg sync.WaitGroup
	jobs := make([]*job, 0, 32)
	var jobsMu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := uint64(1); seed <= 8; seed++ { // seeds 1-4 overlap recovery
				j, err := srv2.submit(experiments.Spec{Bench: "npb-ep.8", Seed: seed}, false)
				if err != nil {
					t.Error(err)
					return
				}
				jobsMu.Lock()
				jobs = append(jobs, j)
				jobsMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	for _, j := range jobs {
		<-j.done
	}
	srv2.Close()

	// Each of the 8 distinct addresses ran at most once per incarnation
	// window; the dedup/cache layers absorbed the other 31+ submissions.
	if got := atomic.LoadInt64(&ran); got != 8 {
		t.Fatalf("runner executed %d times, want 8 (one per distinct spec)", got)
	}

	// Third incarnation recovers every result from the journal.
	srv3 := New(Config{Workers: 1, Backlog: 4, StateDir: dir,
		Runner: func(s experiments.Spec, attempt int) (core.Result, error) {
			t.Error("recovered cache should answer without running")
			return core.Result{}, nil
		}})
	defer srv3.Close()
	for seed := uint64(1); seed <= 8; seed++ {
		spec := experiments.Spec{Bench: "npb-ep.8", Seed: seed}
		id, err := spec.ID()
		if err != nil {
			t.Fatal(err)
		}
		st, result, ok := srv3.lookup(id)
		if !ok || st != StatusDone {
			t.Fatalf("seed %d: not recovered (ok=%v status=%s)", seed, ok, st)
		}
		var jr JobResult
		if err := json.Unmarshal(result, &jr); err != nil {
			t.Fatal(err)
		}
		if want := int64(vclock.Duration(seed) * vclock.Microsecond); jr.SimTimePS != want {
			t.Fatalf("seed %d: recovered sim time %d, want %d", seed, jr.SimTimePS, want)
		}
	}
}
