package simserve

import "container/list"

// cacheEntry is one completed job's canonical result, keyed by the
// spec's content address. failed results are cached too: failures are
// as deterministic as successes (same spec, same panic), so retrying
// them would burn a worker to learn nothing new.
type cacheEntry struct {
	id     string
	result []byte // canonical JobResult JSON
	failed bool
}

// lruCache is a bounded most-recently-used result cache. Not safe for
// concurrent use; the server guards it with its own lock.
type lruCache struct {
	limit     int
	order     *list.List               // front = most recent
	byID      map[string]*list.Element // value: *cacheEntry
	evictions int64
}

func newLRUCache(limit int) *lruCache {
	if limit < 1 {
		limit = 1
	}
	return &lruCache{limit: limit, order: list.New(), byID: map[string]*list.Element{}}
}

// get returns the entry for id, marking it most recently used.
func (c *lruCache) get(id string) (*cacheEntry, bool) {
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts or refreshes an entry, evicting the least recently used
// entry when over the limit.
func (c *lruCache) put(e *cacheEntry) {
	if el, ok := c.byID[e.id]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.byID[e.id] = c.order.PushFront(e)
	for c.order.Len() > c.limit {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byID, oldest.Value.(*cacheEntry).id)
		c.evictions++
	}
}

// len reports the number of cached results.
func (c *lruCache) len() int { return c.order.Len() }
