package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(0x1000)
	data := []byte("hello, accelerator")
	m.WriteAt(0x2000, data)
	got := make([]byte, len(data))
	m.ReadAt(0x2000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New(0)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := Addr(PageSize - 100) // straddles page boundaries
	m.WriteAt(addr, data)
	got := make([]byte, len(data))
	m.ReadAt(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
}

func TestZeroFill(t *testing.T) {
	m := New(0)
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xff
	}
	m.ReadAt(0x99999, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched memory not zero")
		}
	}
}

func TestAllocNonOverlapping(t *testing.T) {
	m := New(0x1000)
	a := m.Alloc("a", 100)
	b := m.Alloc("b", PageSize+1)
	if a.Size != PageSize {
		t.Errorf("a.Size = %d, want page-rounded", a.Size)
	}
	if b.Size != 2*PageSize {
		t.Errorf("b.Size = %d, want 2 pages", b.Size)
	}
	if a.Base+Addr(a.Size) > b.Base {
		t.Fatal("regions overlap")
	}
}

func TestRegionAt(t *testing.T) {
	m := New(0x1000)
	a := m.Alloc("a", PageSize)
	b := m.Alloc("b", PageSize)
	if got := m.RegionAt(a.Base + 10); got != a {
		t.Errorf("RegionAt in a = %v", got)
	}
	if got := m.RegionAt(b.Base); got != b {
		t.Errorf("RegionAt at b.Base = %v", got)
	}
	if got := m.RegionAt(b.Base + Addr(b.Size)); got != nil {
		t.Errorf("RegionAt past end = %v, want nil", got)
	}
	if got := m.RegionAt(0x10); got != nil {
		t.Errorf("RegionAt before all = %v, want nil", got)
	}
}

func TestProtectionFires(t *testing.T) {
	m := New(0x1000)
	r := m.Alloc("mmio", PageSize)
	var faults []AccessKind
	m.Protect(r, func(kind AccessKind, addr Addr, size int) {
		faults = append(faults, kind)
		if !r.Contains(addr, size) {
			t.Errorf("fault outside region: %#x+%d", uint64(addr), size)
		}
	})
	m.WriteU32Faulting(r.Base, 7)
	_ = m.ReadU32Faulting(r.Base)
	if len(faults) != 2 || faults[0] != Write || faults[1] != Read {
		t.Fatalf("faults = %v", faults)
	}
	// Non-faulting ("zero-cost") access must not trap.
	m.WriteU32(r.Base, 9)
	if len(faults) != 2 {
		t.Fatal("zero-cost access trapped")
	}
	// Access outside the region must not trap.
	m.WriteU32Faulting(r.Base+Addr(r.Size)+64, 1)
	if len(faults) != 2 {
		t.Fatal("unprotected access trapped")
	}
}

func TestUnprotect(t *testing.T) {
	m := New(0)
	r := m.Alloc("buf", PageSize)
	fired := 0
	m.Protect(r, func(AccessKind, Addr, int) { fired++ })
	m.WriteU64Faulting(r.Base, 1)
	m.Unprotect(r)
	m.WriteU64Faulting(r.Base, 2)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestFaultHandlerRunsBeforeAccess(t *testing.T) {
	// The paper's runtime resolves the trap (e.g. the accelerator writes a
	// completion flag) and then the faulting read completes and must see
	// the resolved data.
	m := New(0)
	r := m.Alloc("status", PageSize)
	m.Protect(r, func(kind AccessKind, addr Addr, size int) {
		if kind == Read {
			m.WriteU32(r.Base, 0xD0E) // accelerator catch-up writes status
		}
	})
	if got := m.ReadU32Faulting(r.Base); got != 0xD0E {
		t.Fatalf("read %#x, want value written during fault resolution", got)
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	f := func(addr uint32, v64 uint64, v32 uint32) bool {
		m := New(0)
		a := Addr(addr)
		m.WriteU64(a, v64)
		if m.ReadU64(a) != v64 {
			return false
		}
		m.WriteU32(a+16, v32)
		return m.ReadU32(a+16) == v32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	New(0).Alloc("zero", 0)
}
