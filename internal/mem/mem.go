// Package mem implements the simulated physical memory shared by the host
// CPUs and the accelerators.
//
// Memory is sparse (allocated in fixed-size pages on first touch) and
// supports per-region protection hooks: the NEX runtime protects the MMIO
// and task-buffer regions so that application accesses to them fault into
// the runtime, mirroring the paper's mprotect()+ptrace trap mechanism
// (§3.2) on a simulated substrate.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the allocation granularity of the sparse memory.
const PageSize = 4096

// Addr is a simulated physical address.
type Addr uint64

// AccessKind distinguishes reads from writes in fault hooks.
type AccessKind int

const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// FaultHandler is invoked when a protected region is accessed through the
// faulting accessors. The handler runs before the access completes; after
// it returns, the access proceeds against the backing memory (mirroring
// how the NEX runtime completes the faulting instruction after resolving
// the trap).
type FaultHandler func(kind AccessKind, addr Addr, size int)

// Region is a named span of the physical address space.
type Region struct {
	Name  string
	Base  Addr
	Size  uint64
	hook  FaultHandler
	armed bool
}

// Contains reports whether [addr, addr+size) lies within the region.
func (r *Region) Contains(addr Addr, size int) bool {
	return addr >= r.Base && uint64(addr)+uint64(size) <= uint64(r.Base)+r.Size
}

// Memory is a sparse simulated physical memory. By default it is not
// safe for concurrent use (all engines are single-threaded event
// loops); in parallel intra-run mode SetConcurrent arms a page-table
// lock so that the host and device stepper goroutines may access
// *disjoint* byte ranges concurrently. Overlapping concurrent accesses
// remain a contract violation (the data race they would constitute is
// exactly the determinism bug, and `go test -race` surfaces it).
type Memory struct {
	pages   map[Addr][]byte // keyed by page base
	regions []*Region       // sorted by Base
	next    Addr            // bump allocator for Alloc
	mu      *sync.RWMutex   // nil unless SetConcurrent was called
}

// SetConcurrent arms the page-table lock for cross-goroutine use. The
// serial path keeps its zero-overhead lookups when this is never
// called.
func (m *Memory) SetConcurrent() {
	if m.mu == nil {
		m.mu = new(sync.RWMutex)
	}
}

// New returns an empty memory whose allocator starts at base.
func New(base Addr) *Memory {
	return &Memory{pages: make(map[Addr][]byte), next: base}
}

// Alloc reserves a new named region of at least size bytes, rounded up to
// whole pages, and returns it. Regions never overlap.
func (m *Memory) Alloc(name string, size uint64) *Region {
	if size == 0 {
		panic("mem: Alloc of zero bytes")
	}
	rounded := (size + PageSize - 1) / PageSize * PageSize
	r := &Region{Name: name, Base: m.next, Size: rounded}
	m.next += Addr(rounded)
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return r
}

// Protect arms a fault handler on the region. Subsequent ReadFaulting /
// WriteFaulting calls that touch the region invoke the handler first.
func (m *Memory) Protect(r *Region, h FaultHandler) {
	r.hook = h
	r.armed = true
}

// Unprotect disarms the region's fault handler.
func (m *Memory) Unprotect(r *Region) { r.armed = false }

// RegionAt returns the region containing addr, or nil.
func (m *Memory) RegionAt(addr Addr) *Region {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].Base+Addr(m.regions[i].Size) > addr
	})
	if i < len(m.regions) && addr >= m.regions[i].Base {
		return m.regions[i]
	}
	return nil
}

func (m *Memory) page(addr Addr) []byte {
	base := addr &^ (PageSize - 1)
	if m.mu != nil {
		m.mu.RLock()
		p, ok := m.pages[base]
		m.mu.RUnlock()
		if ok {
			return p
		}
		m.mu.Lock()
		p, ok = m.pages[base]
		if !ok {
			p = make([]byte, PageSize)
			m.pages[base] = p
		}
		m.mu.Unlock()
		return p
	}
	p, ok := m.pages[base]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[base] = p
	}
	return p
}

// ReadAt copies len(buf) bytes at addr into buf without triggering
// protection (a "zero-cost" functional access in DSim terms, §5).
func (m *Memory) ReadAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr)
		off := int(addr & (PageSize - 1))
		n := copy(buf, p[off:])
		buf = buf[n:]
		addr += Addr(n)
	}
}

// WriteAt copies buf to addr without triggering protection.
func (m *Memory) WriteAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr)
		off := int(addr & (PageSize - 1))
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += Addr(n)
	}
}

// ReadFaulting is ReadAt through the protection layer: if the access
// touches an armed region, its handler runs first.
func (m *Memory) ReadFaulting(addr Addr, buf []byte) {
	m.maybeFault(Read, addr, len(buf))
	m.ReadAt(addr, buf)
}

// WriteFaulting is WriteAt through the protection layer.
func (m *Memory) WriteFaulting(addr Addr, buf []byte) {
	m.maybeFault(Write, addr, len(buf))
	m.WriteAt(addr, buf)
}

func (m *Memory) maybeFault(kind AccessKind, addr Addr, size int) {
	if r := m.RegionAt(addr); r != nil && r.armed && r.hook != nil {
		r.hook(kind, addr, size)
	}
}

// Convenience fixed-width accessors (little-endian, matching the modeled
// x86 host).

// ReadU32 reads a 32-bit little-endian value (non-faulting).
func (m *Memory) ReadU32(addr Addr) uint32 {
	var b [4]byte
	m.ReadAt(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a 32-bit little-endian value (non-faulting).
func (m *Memory) WriteU32(addr Addr, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.WriteAt(addr, b[:])
}

// ReadU64 reads a 64-bit little-endian value (non-faulting).
func (m *Memory) ReadU64(addr Addr) uint64 {
	var b [8]byte
	m.ReadAt(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a 64-bit little-endian value (non-faulting).
func (m *Memory) WriteU64(addr Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteAt(addr, b[:])
}

// ReadU32Faulting reads a 32-bit value through the protection layer.
func (m *Memory) ReadU32Faulting(addr Addr) uint32 {
	var b [4]byte
	m.ReadFaulting(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32Faulting writes a 32-bit value through the protection layer.
func (m *Memory) WriteU32Faulting(addr Addr, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.WriteFaulting(addr, b[:])
}

// ReadU64Faulting reads a 64-bit value through the protection layer.
func (m *Memory) ReadU64Faulting(addr Addr) uint64 {
	var b [8]byte
	m.ReadFaulting(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64Faulting writes a 64-bit value through the protection layer.
func (m *Memory) WriteU64Faulting(addr Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteFaulting(addr, b[:])
}

func (r *Region) String() string {
	return fmt.Sprintf("%s[%#x+%#x]", r.Name, uint64(r.Base), r.Size)
}
