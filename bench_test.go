// Package nexsim's root benchmarks expose one testing.B target per table
// and figure of the paper's evaluation (§6). Each benchmark iteration is
// one representative full-stack simulation run (the complete sweeps live
// in cmd/paperbench; these targets let `go test -bench` regenerate the
// headline row of each result quickly and track regressions).
package nexsim

import (
	"io"
	"testing"

	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/nex"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// runOnce executes one benchmark under one combination.
func runOnce(b *testing.B, name string, host core.HostKind, acc core.AccelKind, ncfg nex.Config) {
	b.Helper()
	bench, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Host: host, Accel: acc, Model: bench.Model, Devices: bench.Devices,
		Cores: 16, Seed: 42,
	}
	cfg.NEX = ncfg
	sys := core.Build(cfg)
	res := sys.Run(bench.Build(&sys.Ctx))
	if res.SimTime <= 0 {
		b.Fatalf("%s on %v+%v produced no simulated time", name, host, acc)
	}
	b.ReportMetric(res.SimTime.Seconds()*1e3, "simulated-ms")
}

// --- Table 1 / Figure 4: the four simulator combinations on a
// single-accelerator application. ---

func BenchmarkTable1_Gem5RTL_JPEG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-decode", core.HostGem5, core.AccelRTL, nex.Config{})
	}
}

func BenchmarkTable1_Gem5DSim_JPEG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-decode", core.HostGem5, core.AccelDSim, nex.Config{})
	}
}

func BenchmarkTable1_NEXRTL_JPEG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-decode", core.HostNEX, core.AccelRTL, nex.Config{})
	}
}

func BenchmarkTable1_NEXDSim_JPEG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-decode", core.HostNEX, core.AccelDSim, nex.Config{})
	}
}

// --- Figure 3: baseline vs NEX+DSim per workload family. ---

func BenchmarkFig3_VTAResnet18_Gem5RTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "vta-resnet18", core.HostGem5, core.AccelRTL, nex.Config{})
	}
}

func BenchmarkFig3_VTAResnet18_NEXDSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "vta-resnet18", core.HostNEX, core.AccelDSim, nex.Config{})
	}
}

func BenchmarkFig3_Protoacc0_Gem5RTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "protoacc-bench0", core.HostGem5, core.AccelRTL, nex.Config{})
	}
}

func BenchmarkFig3_Protoacc0_NEXDSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "protoacc-bench0", core.HostNEX, core.AccelDSim, nex.Config{})
	}
}

func BenchmarkFig3_JPEGmt8_Gem5RTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-mt.8", core.HostGem5, core.AccelRTL, nex.Config{})
	}
}

func BenchmarkFig3_JPEGmt8_NEXDSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-mt.8", core.HostNEX, core.AccelDSim, nex.Config{})
	}
}

// --- Table 3: accuracy reference runs (the error computation itself is
// in cmd/paperbench -exp table3; these track the two engines' cost). ---

func BenchmarkTable3_Reference_VTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "vta-resnet18", core.HostReference, core.AccelRTL, nex.Config{})
	}
}

// --- Table 4: NEX on an NPB kernel per epoch-duration extreme. ---

func benchNPB(b *testing.B, epoch vclock.Duration, threads int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Host: core.HostNEX, Cores: 16, Seed: 42}
		cfg.NEX = nex.Config{Epoch: epoch, VirtualCores: 16}
		sys := core.Build(cfg)
		res := sys.Run(workloads.NPBProgram("cg", threads, sys.Ctx.Clock))
		if res.SimTime <= 0 {
			b.Fatal("no simulated time")
		}
	}
}

func BenchmarkTable4_CG16_Epoch500ns(b *testing.B) { benchNPB(b, 500*vclock.Nanosecond, 16) }
func BenchmarkTable4_CG16_Epoch4us(b *testing.B)   { benchNPB(b, 4*vclock.Microsecond, 16) }

// --- §6.6: oversubscription / complementary scheduling. ---

func BenchmarkCompSched_LU16on4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Host: core.HostNEX, Cores: 16, Seed: 42}
		cfg.NEX = nex.Config{Epoch: 1 * vclock.Microsecond, VirtualCores: 4}
		sys := core.Build(cfg)
		sys.Run(workloads.NPBProgram("lu", 16, sys.Ctx.Clock))
	}
}

// --- §6.7: hybrid synchronization. ---

func BenchmarkHybrid_JPEG_1us(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOnce(b, "jpeg-decode", core.HostNEX, core.AccelDSim, nex.Config{
			Mode: nex.Hybrid, SyncInterval: 1 * vclock.Microsecond,
		})
	}
}

// --- §6.4 / §A.2 use-case sweeps (full experiment as one iteration). ---

func BenchmarkWhatIf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WhatIf(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVTASweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.VTASweep(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtoSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.ProtoSweep(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTightVsChannel_VTAMatmul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench, _ := workloads.ByName("vta-matmul")
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: bench.Model, Devices: bench.Devices, Cores: 16, Seed: 42,
			UseChannel: true,
		})
		sys.Run(bench.Build(&sys.Ctx))
	}
}

// --- Checkpoint/fork engine: snapshot a halted prefix into a blob and
// fork fresh systems from it. Snapshot is a pure serialization of the
// halted engine; Restore rebuilds thread state by journal replay, so its
// cost is dominated by re-executing the (short) staging prefix. Both
// report allocations and the blob size. ---

// checkpointPrefix builds a system and runs it up to its first device
// interaction, leaving it halted and checkpointable.
func checkpointPrefix(b *testing.B) (*core.System, core.Config, workloads.Bench) {
	b.Helper()
	bench, err := workloads.ByName("protoacc-bench0")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: bench.Model, Devices: bench.Devices, Cores: 16, Seed: 42}
	sys := core.Build(cfg)
	if _, completed := sys.RunPrefix(bench.Build(&sys.Ctx)); completed {
		b.Fatal("prefix ran to completion; nothing to snapshot")
	}
	return sys, cfg, bench
}

func BenchmarkCheckpointSnapshot(b *testing.B) {
	sys, _, _ := checkpointPrefix(b)
	var blob []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blob, err = sys.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "blob-bytes")
}

func BenchmarkCheckpointRestore(b *testing.B) {
	psys, cfg, bench := checkpointPrefix(b)
	blob, err := psys.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.Build(cfg)
		if err := sys.RestoreCheckpoint(blob, bench.Build(&sys.Ctx)); err != nil {
			b.Fatal(err)
		}
		sys.Release()
	}
	b.ReportMetric(float64(len(blob)), "blob-bytes")
}

// --- Sweep executor: the same experiment serially and with 4 workers.
// On a multicore host the parallel target approaches a len(jobs)-bounded
// fraction of the serial wall time; on a single core it tracks the
// executor's overhead instead. ---

func BenchmarkVTASweep_Serial(b *testing.B) {
	experiments.SetParallelism(1)
	defer experiments.SetParallelism(1)
	for i := 0; i < b.N; i++ {
		if err := experiments.VTASweep(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVTASweep_Parallel4(b *testing.B) {
	experiments.SetParallelism(4)
	defer experiments.SetParallelism(1)
	for i := 0; i < b.N; i++ {
		if err := experiments.VTASweep(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
