// Command simrouter fronts a fleet of simd shards with a stateless
// cluster router (see internal/cluster and the README's "Running a
// cluster" section): consistent-hash placement of content-addressed
// specs with bounded loads, health-probe-driven membership, hedged
// retries that double as cross-node determinism probes, replicated
// hot-set caching, and per-tenant admission control.
//
// Usage:
//
//	simrouter -addr 127.0.0.1:9000 -shards 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	simrouter -shards ... -hedge-after 500ms -tenant-rate 50 -tenant-weights team-a=4,team-b=1
//
// Endpoints mirror simd exactly — POST /jobs, GET /jobs/{id},
// /healthz, /metrics — so clients are oblivious to whether they talk
// to one daemon or a cluster.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes and
// in-flight forwards complete before the process exits. The router
// owns no durable state, so killing it loses nothing but connections.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nexsim/internal/cluster"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:9000",
			"listen address (use port 0 for an ephemeral port)")
		shardsFlag = flag.String("shards", "",
			"comma-separated simd shard addresses (host:port), required")
		vnodes = flag.Int("vnodes", 0,
			"virtual nodes per shard on the hash ring (0 = default of 64)")
		loadFactor = flag.Float64("load-factor", 0,
			"bounded-load ceiling factor c (0 = default of 1.25; <= 1 disables bounding)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"duplicate a wait=true sub-batch on the next replica after this long;\n"+
				"the first answer wins and the loser is byte-compared (0 = off)")
		forwardTimeout = flag.Duration("forward-timeout", 5*time.Minute,
			"cap on one forwarded request; must exceed the shards' wait timeout")
		probeInterval = flag.Duration("probe-interval", time.Second,
			"period between /healthz probes of every shard")
		failThreshold = flag.Int("fail-threshold", 3,
			"consecutive probe failures before a shard is marked down")
		readmitOKs = flag.Int("readmit-oks", 2,
			"consecutive probe successes before a down shard is re-admitted")
		hotsetK = flag.Int("hotset-k", 8,
			"hottest content addresses replicated to every shard each interval")
		hotsetInterval = flag.Duration("hotset-interval", 5*time.Second,
			"period of the hot-set digest exchange")
		tenantRate = flag.Float64("tenant-rate", 0,
			"admission tokens (specs) per second per unit tenant weight (0 = no gate)")
		tenantBurst = flag.Float64("tenant-burst", 0,
			"bucket depth in seconds of refill (0 = default of 4)")
		tenantWeights = flag.String("tenant-weights", "",
			"comma-separated tenant=weight fair shares (unlisted tenants weigh 1)")
		portFile = flag.String("portfile", "",
			"write the bound host:port to this file once listening (for scripts)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute,
			"cap on connection draining during shutdown")
	)
	flag.Parse()

	shards := splitNonEmpty(*shardsFlag)
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "simrouter: -shards is required (comma-separated host:port list)")
		os.Exit(2)
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrouter:", err)
		os.Exit(2)
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Shards:         shards,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HedgeAfter:     *hedgeAfter,
		ForwardTimeout: *forwardTimeout,
		ProbeInterval:  *probeInterval,
		FailThreshold:  *failThreshold,
		ReadmitOKs:     *readmitOKs,
		HotSetK:        *hotsetK,
		HotSetInterval: *hotsetInterval,
		Admission: cluster.AdmissionConfig{
			RatePerSec: *tenantRate,
			BurstSec:   *tenantBurst,
			Weights:    weights,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrouter:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrouter:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simrouter:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "simrouter: listening on %s, routing to %d shards\n", bound, len(shards))

	router.Start()
	httpSrv := &http.Server{Handler: router.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "simrouter:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "simrouter: %s — draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "simrouter: shutdown:", err)
	}
	router.Close()
	if *portFile != "" {
		if err := os.Remove(*portFile); err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "simrouter:", err)
		}
	}
	fmt.Fprintln(os.Stderr, "simrouter: drained, exiting")
}

// splitNonEmpty splits a comma list, dropping empty entries so trailing
// commas are harmless.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseWeights parses "tenant=weight,..." into the admission map.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]float64{}
	for _, part := range splitNonEmpty(s) {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want tenant=weight)", part)
		}
		wt, err := strconv.ParseFloat(val, 64)
		if err != nil || wt <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive number)", val, name)
		}
		weights[name] = wt
	}
	return weights, nil
}
