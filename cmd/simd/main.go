// Command simd serves the deterministic simulation engines as a
// long-running HTTP/JSON daemon (see internal/simserve and the README's
// "Running as a service" section).
//
// Usage:
//
//	simd -addr 127.0.0.1:8080
//	simd -addr 127.0.0.1:0 -portfile /tmp/simd.addr   # ephemeral port
//	simd -intra 2 -pprof                              # parallel intra-run mode + profiling
//
// Endpoints:
//
//	POST /jobs      submit a batch of run specs ({"specs":[...],"wait":true})
//	GET  /jobs/{id} poll one job by content address
//	GET  /healthz   liveness
//	GET  /metrics   queue/cache/worker counters + per-bench wall histograms
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, and
// queued plus in-flight simulations drain to completion (their results
// land in the cache) before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nexsim/internal/simserve"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080",
			"listen address (use port 0 for an ephemeral port)")
		workers = flag.Int("workers", 0,
			"simulation worker pool size (0 = GOMAXPROCS)")
		backlog = flag.Int("queue", 64,
			"job queue bound; submits beyond it are refused with 429")
		cacheEntries = flag.Int("cache", 1024,
			"result cache capacity (content-addressed LRU)")
		waitTimeout = flag.Duration("wait-timeout", 60*time.Second,
			"cap on wait=true submits before degrading to 202 + poll")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Minute,
			"cap on connection draining during shutdown")
		portFile = flag.String("portfile", "",
			"write the bound host:port to this file once listening (for scripts)")
		checkpoints = flag.Bool("checkpoints", false,
			"fork sweep jobs from cached prefix snapshots (byte-identical results)")
		stateDir = flag.String("state-dir", "",
			"crash-safe persistence directory: results journal to a WAL and prefix\n"+
				"checkpoints to disk, and a restarted daemon recovers both (empty = in-memory)")
		runBudget = flag.Duration("run-budget", 0,
			"per-attempt wall budget; an over-budget run aborts with a structured\n"+
				"transient error instead of wedging its worker (0 = none)")
		retries = flag.Int("retries", 0,
			"max retries of a transiently-failed run (0 = default of 2, negative = off)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"launch a second identical attempt for jobs still running after this long;\n"+
				"the first published result wins (0 = off)")
		shardID = flag.String("shard-id", "",
			"name of this daemon within a simrouter cluster; operational identity\n"+
				"only (surfaces on /metrics), never part of a spec or result")
		intra = flag.Int("intra", 1,
			"intra-run workers per simulation (host + N-1 device steppers; results\n"+
				"stay byte-identical, so cached entries are shared across settings)")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	srv, err := simserve.Open(simserve.Config{
		Workers:      *workers,
		Intra:        *intra,
		Backlog:      *backlog,
		CacheEntries: *cacheEntries,
		WaitTimeout:  *waitTimeout,
		Checkpoints:  *checkpoints,
		StateDir:     *stateDir,
		RunBudget:    *runBudget,
		MaxRetries:   *retries,
		HedgeAfter:   *hedgeAfter,
		ShardID:      *shardID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "simd: listening on %s (workers=%d queue=%d cache=%d)\n",
		bound, srv.Workers(), *backlog, *cacheEntries)

	handler := srv.Handler()
	if *pprofOn {
		// Keep the default mux out of it: mount the pprof handlers on an
		// explicit mux that falls through to the daemon's API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "simd: %s — draining\n", got)
	}

	// Stop accepting connections, then drain in-flight simulations.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
	}
	srv.Close()
	if *portFile != "" {
		// Remove the advertisement so wrappers polling the file do not
		// connect to a dead (or recycled) address after we exit.
		if err := os.Remove(*portFile); err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "simd:", err)
		}
	}
	fmt.Fprintln(os.Stderr, "simd: drained, exiting")
}
