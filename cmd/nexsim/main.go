// Command nexsim runs one benchmark under one simulator combination and
// reports simulated time, wall-clock time and (optionally) the
// coarse-grained execution trace — the interactive workflow the paper
// advocates.
//
// Usage:
//
//	nexsim -list
//	nexsim -bench vta-resnet50 -host nex -accel dsim -trace
//	nexsim -bench jpeg-decode -host gem5 -accel rtl
//	nexsim -bench vta-resnet18 -seeds 8 -parallel 4
//
// -seeds N runs the benchmark under N consecutive seeds (a quick
// robustness sweep); -parallel fans those independent runs across
// workers via the internal/sweep executor.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/sweep"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (see -list)")
		hostName  = flag.String("host", "nex", "host engine: nex | gem5 | reference")
		accName   = flag.String("accel", "dsim", "accelerator engine: dsim | rtl")
		epoch     = flag.Duration("epoch", 0, "NEX epoch duration (e.g. 1us)")
		showTrace = flag.Bool("trace", false, "print the coarse-grained execution trace summary")
		chrome    = flag.String("chrome-trace", "", "write the trace as Chrome trace-event JSON to this file")
		list      = flag.Bool("list", false, "list benchmarks")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		seeds     = flag.Int("seeds", 1, "run this many consecutive seeds (starting at -seed)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"workers for the -seeds sweep (1 = serial)")
		intra = flag.Int("intra", 1,
			"intra-run workers (host + N-1 device steppers; results byte-identical)")
	)
	flag.Parse()

	if *list {
		for _, b := range workloads.Catalog() {
			model := string(b.Model)
			if model == "" {
				model = "cpu-only"
			}
			fmt.Printf("%-22s accel=%-9s devices=%d threads=%d\n",
				b.Name, model, b.Devices, b.Threads)
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "nexsim: -bench is required (try -list)")
		os.Exit(2)
	}
	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var host core.HostKind
	switch *hostName {
	case "nex":
		host = core.HostNEX
	case "gem5":
		host = core.HostGem5
	case "reference":
		host = core.HostReference
	default:
		fmt.Fprintf(os.Stderr, "nexsim: unknown host %q\n", *hostName)
		os.Exit(2)
	}
	var acc core.AccelKind
	switch *accName {
	case "dsim":
		acc = core.AccelDSim
	case "rtl":
		acc = core.AccelRTL
	default:
		fmt.Fprintf(os.Stderr, "nexsim: unknown accelerator engine %q\n", *accName)
		os.Exit(2)
	}

	// A single run has one inter-run worker; only the -seeds sweep fans
	// across -parallel. The clamp keeps workers×intra within GOMAXPROCS.
	sweepWorkers := 1
	if *seeds > 1 {
		sweepWorkers = sweep.New(*parallel).Workers()
	}
	cfg := core.Config{
		Host: host, Accel: acc, Model: b.Model, Devices: b.Devices,
		Cores: 16, Seed: *seed,
		IntraParallel: sweep.ClampIntra(sweepWorkers, *intra, 0),
	}
	if *epoch > 0 {
		cfg.NEX.Epoch = vclock.FromStd(*epoch)
	}

	if *seeds > 1 {
		// Seed sweep: each run builds its own system, so the runs are
		// independent and fan across the sweep executor's workers.
		jobs := make([]func() core.Result, *seeds)
		for i := range jobs {
			scfg := cfg
			scfg.Seed = *seed + uint64(i)
			jobs[i] = func() core.Result {
				sys := core.Build(scfg)
				return sys.Run(b.Build(&sys.Ctx))
			}
		}
		start := time.Now()
		res := sweep.Map(sweep.New(*parallel), jobs)
		wall := time.Since(start)
		fmt.Printf("benchmark:   %s\n", b.Name)
		fmt.Printf("combination: %v+%v\n", host, acc)
		fmt.Printf("%-8s %14s\n", "seed", "simulated")
		for i, r := range res {
			fmt.Printf("%-8d %14v\n", *seed+uint64(i), r.SimTime)
		}
		workers := sweep.New(*parallel).Workers()
		noun := "workers"
		if workers == 1 {
			noun = "worker"
		}
		fmt.Printf("(%d seeds on %d %s in %v)\n",
			*seeds, workers, noun, wall.Round(time.Microsecond))
		return
	}

	var rec *trace.Recorder
	if *showTrace || *chrome != "" {
		rec = trace.New()
		cfg.Trace = rec
	}

	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	start := time.Now()
	r := sys.Run(prog)
	wall := time.Since(start)

	fmt.Printf("benchmark:       %s\n", b.Name)
	fmt.Printf("combination:     %v+%v\n", host, acc)
	fmt.Printf("simulated time:  %v\n", r.SimTime)
	fmt.Printf("wall-clock time: %v\n", wall.Round(time.Microsecond))
	fmt.Printf("slowdown:        %.1fx\n", r.Slowdown())
	if host == core.HostNEX {
		s := r.NEXStats
		fmt.Printf("nex: epochs=%d thread-epochs=%d traps=%d syncs=%d irqs=%d idle-jumps=%d\n",
			s.Epochs, s.ThreadEpochs, s.Traps, s.Syncs, s.IRQs, s.IdleJumps)
	}
	for i, d := range r.Devices {
		fmt.Printf("device %d: tasks=%d/%d busy=%v dma=%dB\n",
			i, d.TasksCompleted, d.TasksStarted, d.BusyTime, d.DMABytes)
	}
	if rec != nil && *showTrace {
		fmt.Println("--- coarse-grained trace (virtual time per component) ---")
		rec.Dump(os.Stdout)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing)\n", *chrome)
	}
}
