// Command paperbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints a text table with the same
// rows/series the paper reports.
//
// Usage:
//
//	paperbench -list
//	paperbench -exp fig3
//	paperbench -exp all
//	paperbench -exp all -parallel 8 -json results.json
//
// -parallel N fans each experiment's independent simulation runs across
// N workers (default GOMAXPROCS; 1 reproduces the historical serial
// harness). Tables are byte-identical at any worker count: experiments
// enumerate jobs first and render from order-preserved results.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nexsim/internal/experiments"
)

// jsonEntry is one experiment's record in the -json report. Parallel
// and GoVersion record the run environment: wall times are only
// comparable across reports taken at the same worker count and
// toolchain.
type jsonEntry struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	WallMS    float64 `json:"wall_ms"`
	Headline  string  `json:"headline"`
	Parallel  int     `json:"parallel"`
	GoVersion string  `json:"go_version"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"workers for each experiment's simulation jobs (1 = serial)")
		jsonPath = flag.String("json", "",
			"write per-experiment wall time and headline metrics to this file as a JSON array")
		checkpoints = flag.Bool("checkpoints", false,
			"fork sweep points from shared prefix snapshots (same tables, less wall time)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments.SetParallelism(*parallel)
	experiments.SetCheckpoints(*checkpoints)

	var report []jsonEntry
	run := func(e experiments.Experiment) {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		// Render to a buffer so the -json report can extract the headline
		// (the last non-empty line, where every experiment prints its
		// summary statistic or final row).
		var buf bytes.Buffer
		start := time.Now()
		err := e.Run(&buf)
		wall := time.Since(start)
		if _, werr := os.Stdout.Write(buf.Bytes()); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, wall.Round(time.Millisecond))
		report = append(report, jsonEntry{
			ID:        e.ID,
			Title:     e.Title,
			WallMS:    float64(wall) / float64(time.Millisecond),
			Headline:  lastLine(buf.String()),
			Parallel:  *parallel,
			GoVersion: runtime.Version(),
		})
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run(e)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// lastLine returns the last non-empty line of an experiment's output.
func lastLine(s string) string {
	lines := strings.Split(s, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if t := strings.TrimSpace(lines[i]); t != "" {
			return t
		}
	}
	return ""
}
