// Command paperbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints a text table with the same
// rows/series the paper reports.
//
// Usage:
//
//	paperbench -list
//	paperbench -exp fig3
//	paperbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nexsim/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		list = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
