// Command paperbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints a text table with the same
// rows/series the paper reports.
//
// Usage:
//
//	paperbench -list
//	paperbench -exp fig3
//	paperbench -exp all
//	paperbench -exp all -parallel 8 -json results.json
//
// -parallel N fans each experiment's independent simulation runs across
// N workers (default GOMAXPROCS; 1 reproduces the historical serial
// harness). -intra N additionally runs each simulation's accelerator
// engines on up to N-1 stepper goroutines alongside the host engine
// (conservative parallel co-simulation, DESIGN.md §10). Tables are
// byte-identical at any worker or intra count: experiments enumerate
// jobs first, render from order-preserved results, and the intra
// schedule is conservative (observation implies quiesce). The intra
// request is clamped so parallel×intra stays within GOMAXPROCS.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nexsim/internal/cluster"
	"nexsim/internal/experiments"
	"nexsim/internal/sweep"
)

// serving pseudo-experiments: benchmarks of the serving tiers above the
// engines (internal/simserve, internal/cluster) rather than paper
// tables. They run last under -exp all so the engine tables keep their
// paper order, and report through the same -json machinery.
func servingExperiments() []experiments.Experiment {
	return []experiments.Experiment{
		{
			ID:    "clustersweep",
			Title: "Cluster: cached sweep through a 3-shard router vs direct simd",
			Run:   cluster.BenchClusterSweep,
		},
	}
}

// jsonEntry is one experiment's record in the -json report. Parallel,
// Intra and GoVersion record the run environment: wall times are only
// comparable across reports taken at the same worker/intra counts and
// toolchain. HostWallMS is the summed wall time of the experiment's
// simulation runs; DeviceWallMS is the time accelerator stepper lanes
// spent advancing concurrently with those runs (0 at -intra 1), so the
// pair attributes where the time went.
type jsonEntry struct {
	ID           string  `json:"id"`
	Title        string  `json:"title"`
	WallMS       float64 `json:"wall_ms"`
	Headline     string  `json:"headline"`
	Parallel     int     `json:"parallel"`
	Intra        int     `json:"intra"`
	HostWallMS   float64 `json:"host_wall_ms"`
	DeviceWallMS float64 `json:"device_wall_ms"`
	GoVersion    string  `json:"go_version"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"workers for each experiment's simulation jobs (1 = serial)")
		jsonPath = flag.String("json", "",
			"write per-experiment wall time and headline metrics to this file as a JSON array")
		checkpoints = flag.Bool("checkpoints", false,
			"fork sweep points from shared prefix snapshots (same tables, less wall time)")
		intra = flag.Int("intra", 1,
			"intra-run workers per simulation (host + N-1 device steppers; 1 = serial schedule)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range append(experiments.All(), servingExperiments()...) {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments.SetParallelism(*parallel)
	experiments.SetCheckpoints(*checkpoints)
	effIntra := sweep.ClampIntra(*parallel, *intra, 0)
	if effIntra != *intra {
		fmt.Fprintf(os.Stderr, "paperbench: clamped -intra %d to %d (-parallel %d on %d procs)\n",
			*intra, effIntra, *parallel, runtime.GOMAXPROCS(0))
	}
	experiments.SetIntra(effIntra)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var report []jsonEntry
	run := func(e experiments.Experiment) {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		// Render to a buffer so the -json report can extract the headline
		// (the last non-empty line, where every experiment prints its
		// summary statistic or final row).
		var buf bytes.Buffer
		experiments.TakeWallSplit() // reset the split accumulator
		start := time.Now()
		err := e.Run(&buf)
		wall := time.Since(start)
		hostWall, devWall := experiments.TakeWallSplit()
		if _, werr := os.Stdout.Write(buf.Bytes()); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, wall.Round(time.Millisecond))
		report = append(report, jsonEntry{
			ID:           e.ID,
			Title:        e.Title,
			WallMS:       float64(wall) / float64(time.Millisecond),
			Headline:     lastLine(buf.String()),
			Parallel:     *parallel,
			Intra:        effIntra,
			HostWallMS:   float64(hostWall) / float64(time.Millisecond),
			DeviceWallMS: float64(devWall) / float64(time.Millisecond),
			GoVersion:    runtime.Version(),
		})
	}

	if *exp == "all" {
		for _, e := range append(experiments.All(), servingExperiments()...) {
			run(e)
		}
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			for _, se := range servingExperiments() {
				if se.ID == *exp {
					e, err = se, nil
					break
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run(e)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// lastLine returns the last non-empty line of an experiment's output.
func lastLine(s string) string {
	lines := strings.Split(s, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if t := strings.TrimSpace(lines[i]); t != "" {
			return t
		}
	}
	return ""
}
