// Command simlint runs the repository's determinism/correctness
// static-analysis suite (internal/analysis) over the whole module.
//
// Usage:
//
//	simlint [-dir .] [-c checker,checker] [-json] [-list]
//
// When -dir points inside a testdata directory, simlint analyzes just
// that one package (the module walk skips testdata), so the fixture
// corpus can be exercised from the command line:
//
//	simlint -dir internal/analysis/testdata/src/maporder
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a tool
// or load error. `make lint` runs it alongside gofmt and go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexsim/internal/analysis"
)

func main() {
	var (
		dir      = flag.String("dir", ".", "directory inside the module to lint (the module root is discovered from it)")
		checkers = flag.String("c", "", "comma-separated checker IDs to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		list     = flag.Bool("list", false, "list available checkers and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.Checkers() {
			fmt.Printf("%-16s %s\n", c.ID, c.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	var names []string
	if *checkers != "" {
		names = strings.Split(*checkers, ",")
	}
	var findings []analysis.Finding
	if fixtureDir(*dir) {
		findings, err = analysis.AnalyzeFixtureDir(root, *dir, names)
	} else {
		findings, err = analysis.AnalyzeModule(root, names)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
			if f.Fix != "" {
				fmt.Println("\tfix:", f.Fix)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// fixtureDir reports whether dir lies inside a testdata tree.
func fixtureDir(dir string) bool {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return false
	}
	for _, part := range strings.Split(filepath.ToSlash(abs), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
