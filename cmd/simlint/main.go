// Command simlint runs the repository's determinism/correctness
// static-analysis suite (internal/analysis) over the whole module.
//
// Usage:
//
//	simlint [-dir .] [-c checker,checker] [-json] [-list]
//	        [-cache-dir DIR] [-baseline FILE] [-write-baseline FILE]
//
// When -dir points inside a testdata directory, simlint analyzes the
// fixture corpus instead of the module: a single fixture package, or —
// when the directory only contains fixture packages — every one of
// them, sharing one type-checked module so each dependency loads
// exactly once:
//
//	simlint -dir internal/analysis/testdata/src/maporder
//	simlint -dir internal/analysis/testdata/src
//
// -cache-dir enables the on-disk findings cache (module mode only):
// warm runs skip type-checking entirely and replay stored findings,
// keyed by file content hashes. `make lint` uses it; `make lint-cold`
// bypasses it.
//
// -baseline suppresses known findings listed in FILE (one Key per
// line, as written by -write-baseline), so the suite can be adopted
// incrementally on a tree with accepted debt. Baselined findings are
// reported to stderr as a count but do not affect the exit status.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a tool
// or load error. `make lint` runs it alongside gofmt and go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexsim/internal/analysis"
)

func main() {
	var (
		dir           = flag.String("dir", ".", "directory inside the module to lint (the module root is discovered from it)")
		checkers      = flag.String("c", "", "comma-separated checker IDs to run (default: all)")
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		list          = flag.Bool("list", false, "list available checkers and exit")
		cacheDir      = flag.String("cache-dir", "", "findings cache directory (module mode only; empty disables caching)")
		baseline      = flag.String("baseline", "", "suppress findings whose keys appear in this file")
		writeBaseline = flag.String("write-baseline", "", "write current finding keys to this file and exit 0")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.Checkers() {
			fmt.Printf("%-20s %s\n", c.ID, c.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	var names []string
	if *checkers != "" {
		names = strings.Split(*checkers, ",")
	}

	var findings []analysis.Finding
	switch {
	case fixtureDir(*dir):
		findings, err = analysis.AnalyzeFixtureTree(root, *dir, names)
	case *cacheDir != "":
		var cache *analysis.Cache
		cache, err = analysis.OpenCache(*cacheDir)
		if err == nil {
			var warm bool
			findings, warm, err = analysis.AnalyzeModuleCached(root, names, cache)
			if err == nil && warm {
				fmt.Fprintln(os.Stderr, "simlint: warm cache")
			}
		}
	default:
		findings, err = analysis.AnalyzeModule(root, names)
	}
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d key(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baseline != "" {
		known, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		var kept []analysis.Finding
		suppressed := 0
		for _, f := range findings {
			if known[f.Key()] {
				suppressed++
				continue
			}
			kept = append(kept, f)
		}
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d baselined finding(s) suppressed\n", suppressed)
		}
		findings = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
			if f.Fix != "" {
				fmt.Println("\tfix:", f.Fix)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}

// readBaseline loads one finding key per line; blank lines and
// #-comments are skipped.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	return keys, nil
}

// writeBaselineFile records the keys of the current findings, sorted as
// reported, so reruns diff cleanly.
func writeBaselineFile(path string, findings []analysis.Finding) error {
	var b strings.Builder
	b.WriteString("# simlint baseline: accepted findings by key (file:line:col:checker).\n")
	b.WriteString("# Regenerate with: simlint -write-baseline " + filepath.Base(path) + "\n")
	for _, f := range findings {
		b.WriteString(f.Key())
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// fixtureDir reports whether dir lies inside a testdata tree.
func fixtureDir(dir string) bool {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return false
	}
	for _, part := range strings.Split(filepath.ToSlash(abs), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
